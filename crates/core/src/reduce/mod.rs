//! Reduce-side frameworks.
//!
//! Each framework implements [`ReduceSide`]: the engine feeds it shuffle
//! deliveries as mappers complete, then calls `finish` once the last
//! delivery has arrived. All five share [`ReduceEnv`] (the reducer's view
//! of the simulated node) and [`OutputSink`] (batched HDFS output writes +
//! progress accounting).
//!
//! ## Record / replay split
//!
//! [`ReduceEnv`] does **not** touch shared simulation state. It records
//! every side effect a reducer requests — CPU charges, spills, shuffle
//! and work progress, emitted output, snapshot writes, timeline spans —
//! as an [`Effect`] log, advancing only a *local* clock estimate (which
//! never influences any data decision; frameworks consume time linearly).
//! The scheduling layer later applies the log to the shared
//! [`Resources`]/[`ProgressTracker`] with [`replay`], in strict event
//! order. This lets the execution layer ([`crate::exec`]) run reducer
//! ingestion on worker threads while the observable [`crate::job::JobOutcome`]
//! stays bit-identical to sequential execution.

pub mod dinc_hash;
pub mod inc_hash;
pub mod mr_hash;
pub mod sort_merge;

#[cfg(test)]
#[path = "tests.rs"]
mod tests_frameworks;

use crate::api::Job;
use crate::cluster::{ClusterSpec, Framework};
use crate::cost::CostModel;
use crate::map_phase::Payload;
use crate::progress::ProgressTracker;
use crate::sim::{OpKind, Resources};
use opa_common::units::{SimDuration, SimTime};
use opa_common::{Error, HashFamily, Key, Pair, Result, StatePair, Value};
use opa_simio::{IoCategory, IoOp};

/// Advance-the-clock batch size: user-function work is priced per record
/// but committed to the simulation in batches this large, so progress
/// curves rise smoothly without one event per record.
pub(crate) const WORK_BATCH: u64 = 512;

/// Sizing hints the engine derives for each reducer from job hints and the
/// cluster spec.
#[derive(Debug, Clone, Copy)]
pub struct ReducerSizing {
    /// Expected bytes of shuffle input this reducer will receive.
    pub expected_input: u64,
    /// Expected distinct keys this reducer will see.
    pub expected_keys: u64,
    /// Typical key-state pair size in bytes.
    pub state_size: u64,
    /// DINC approximate mode: coverage threshold φ at which monitored keys
    /// may be finalized from partial state, skipping disk (§4.3). `None`
    /// requests exact processing.
    pub early_stop_coverage: Option<f64>,
    /// Which frequency algorithm drives the DINC monitor.
    pub monitor: dinc_hash::MonitorKind,
    /// Whether table-full arrivals may evict resident cold keys
    /// (frequency-gated admission) instead of always spilling themselves.
    pub admission: opa_common::AdmissionPolicy,
}

impl ReducerSizing {
    /// Bucket fan-out `h` such that one bucket's keys fit in `mem` bytes:
    /// `h = ⌈K·entry/mem⌉`, clamped to leave room for write buffers.
    pub fn bucket_count(&self, mem: u64, write_buffer: u64) -> usize {
        let entry = self.state_size.max(1);
        let needed = (self.expected_keys.max(1) * entry).div_ceil(mem.max(1));
        let max_h = (mem / (2 * write_buffer.max(1))).max(1);
        (needed.max(1) as usize).min(max_h as usize)
    }
}

/// One recorded reducer side effect, replayed against shared state by
/// [`replay`]. `Clone` so the fault subsystem can keep each reducer's
/// effect history for crash re-replay ([`replay_recovery`]).
#[derive(Debug, Clone)]
pub enum Effect {
    /// CPU charged to the reducer's node.
    Cpu(SimDuration),
    /// A reduce-spill disk operation (category `U_4`).
    Spill(IoOp),
    /// Shuffle bytes acknowledged into Definition-1 progress.
    Shuffled(u64),
    /// Reduce-work units acknowledged into Definition-1 progress.
    Worked(u64),
    /// Output pairs written to HDFS (flushed sink batch).
    Emit(Vec<Pair>),
    /// A snapshot write of this many bytes (HOP periodic output; does not
    /// count as final job output).
    Snapshot(u64),
    /// Open a timeline span at the replay clock.
    SpanOpen,
    /// Close the innermost open span as `kind`. An unmatched
    /// [`Effect::SpanOpen`] (e.g. a snapshot that found nothing to merge)
    /// is dropped, matching the sequential engine which never recorded a
    /// span for it.
    SpanClose(OpKind),
}

/// The reducer's recording handle on the simulated node. Collects an
/// [`Effect`] log and estimates the local clock; owns no shared state, so
/// it may live on any thread.
pub struct ReduceEnv<'a> {
    /// Cluster configuration.
    pub spec: &'a ClusterSpec,
    log: Vec<Effect>,
}

impl<'a> ReduceEnv<'a> {
    /// A fresh recorder.
    pub fn new(spec: &'a ClusterSpec) -> Self {
        ReduceEnv {
            spec,
            log: Vec::new(),
        }
    }

    /// Shortcut: cost model.
    pub fn cost(&self) -> &CostModel {
        &self.spec.cost
    }

    /// Charges CPU to this reducer starting at `t`; returns the estimated
    /// completion (exact under replay: CPU is uncontended).
    pub fn cpu(&mut self, t: SimTime, dur: SimDuration) -> SimTime {
        self.log.push(Effect::Cpu(dur));
        t + dur
    }

    /// Performs a reduce-spill I/O (category `U_4`). The returned clock is
    /// a contention-free estimate; replay resolves the real disk queue.
    pub fn spill(&mut self, t: SimTime, op: IoOp) -> SimTime {
        if op.is_none() {
            return t;
        }
        let dur = self.spec.cost.spill_time(op);
        self.log.push(Effect::Spill(op));
        t + dur
    }

    /// Acknowledges shuffle bytes into progress.
    pub fn shuffled(&mut self, _t: SimTime, bytes: u64) {
        self.log.push(Effect::Shuffled(bytes));
    }

    /// Acknowledges reduce-work units into progress.
    pub fn worked(&mut self, _t: SimTime, units: u64) {
        self.log.push(Effect::Worked(units));
    }

    /// Writes output pairs to HDFS (used by [`OutputSink`]).
    pub(crate) fn emit(&mut self, t: SimTime, pairs: Vec<Pair>) -> SimTime {
        let bytes: u64 = pairs.iter().map(Pair::size).sum();
        let dur = self.spec.cost.hdfs_time(IoOp::write(bytes));
        self.log.push(Effect::Emit(pairs));
        t + dur
    }

    /// Writes a snapshot (partial answer) of `bytes` to HDFS.
    pub fn snapshot_write(&mut self, t: SimTime, bytes: u64) -> SimTime {
        let dur = self.spec.cost.hdfs_time(IoOp::write(bytes));
        self.log.push(Effect::Snapshot(bytes));
        t + dur
    }

    /// Marks the start of a timeline span at the current clock.
    pub fn span_open(&mut self) {
        self.log.push(Effect::SpanOpen);
    }

    /// Closes the innermost open span as `kind`.
    pub fn span_close(&mut self, kind: OpKind) {
        self.log.push(Effect::SpanClose(kind));
    }

    /// Consumes the recorder, yielding the effect log for [`replay`].
    pub fn into_log(self) -> Vec<Effect> {
        self.log
    }
}

/// Mutable borrows of the shared simulation state one replayed reducer
/// writes into. Assembled by the scheduling layer per replay call.
pub struct ReplayTarget<'a> {
    /// Node hosting this reducer.
    pub node: usize,
    /// Shared disks / usage / timeline / IoStats.
    pub res: &'a mut Resources,
    /// Job-wide progress tracker.
    pub progress: &'a mut ProgressTracker,
    /// Job-wide collected output.
    pub output: &'a mut Vec<Pair>,
    /// CPU seconds consumed by this reducer (engine aggregates per node).
    pub reduce_cpu: &'a mut SimDuration,
    /// Reduce-side spill bytes written (Tables 1/3/4 "Reduce spill").
    pub spill_written: &'a mut u64,
    /// Snapshot output bytes (HOP's periodic approximate outputs, §3.3).
    pub snapshot_bytes: &'a mut u64,
}

/// Applies a recorded effect log to the shared simulation state starting
/// at `t0`, resolving disk-queue contention and progress/timeline order.
/// Returns the reducer's real completion time. Must be called on the
/// scheduling thread, in event order — this is what makes parallel
/// recording observationally identical to sequential execution.
pub fn replay(
    log: Vec<Effect>,
    t0: SimTime,
    spec: &ClusterSpec,
    target: ReplayTarget<'_>,
) -> SimTime {
    let cost = spec.cost;
    let mut t = t0;
    let mut spans: Vec<SimTime> = Vec::new();
    for effect in log {
        match effect {
            Effect::Cpu(dur) => {
                *target.reduce_cpu += dur;
                t = target.res.cpu(target.node, t, dur);
            }
            Effect::Spill(op) => {
                *target.spill_written += op.written;
                t = target
                    .res
                    .spill_io(target.node, t, IoCategory::ReduceSpill, op, &cost);
            }
            Effect::Shuffled(bytes) => target.progress.shuffled(t, bytes),
            Effect::Worked(units) => target.progress.worked(t, units),
            Effect::Emit(pairs) => {
                let bytes: u64 = pairs.iter().map(Pair::size).sum();
                t = target.res.hdfs_io(
                    target.node,
                    t,
                    IoCategory::ReduceOutput,
                    IoOp::write(bytes),
                    &cost,
                );
                target.progress.emitted(t, bytes);
                target.output.extend(pairs);
            }
            Effect::Snapshot(bytes) => {
                *target.snapshot_bytes += bytes;
                t = target.res.hdfs_io(
                    target.node,
                    t,
                    IoCategory::ReduceOutput,
                    IoOp::write(bytes),
                    &cost,
                );
            }
            Effect::SpanOpen => spans.push(t),
            Effect::SpanClose(kind) => {
                let start = spans.pop().expect("span_close without span_open");
                target.res.span(target.node, kind, start, t);
            }
        }
    }
    t
}

/// What one reduce-task recovery cost: when the restarted reducer caught
/// back up, plus the work it had to redo.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryCost {
    /// Time at which the reducer has re-absorbed its whole history.
    pub ready_at: SimTime,
    /// Bytes re-written (spills) or re-staged (output buffers) whose first
    /// copy was lost with the crash.
    pub wasted_bytes: u64,
    /// CPU burned redoing already-done work.
    pub wasted_cpu: SimDuration,
}

/// Re-replays a crashed reducer's recorded effect history in *time-only*
/// mode: CPU and disk operations are charged against the shared resources
/// again (a restarted reduce task re-fetches its deliveries and redoes its
/// ingestion work), but output, snapshots and progress are **not**
/// re-applied — the job's observable results must stay bit-identical to a
/// fault-free run. Emit/Snapshot effects still pay their HDFS write time:
/// the restarted task re-stages those buffers before its (idempotent)
/// commit. Must run on the scheduling thread, like [`replay`].
pub fn replay_recovery(
    history: &[Effect],
    t0: SimTime,
    spec: &ClusterSpec,
    node: usize,
    res: &mut Resources,
) -> RecoveryCost {
    let cost = spec.cost;
    let mut t = t0;
    let mut wasted_bytes = 0u64;
    let mut wasted_cpu = SimDuration::ZERO;
    // Everything charged below is re-done work: segregate it so
    // first-pass metrics (what the §3 model predicts) stay clean.
    res.begin_recovery();
    for effect in history {
        match effect {
            Effect::Cpu(dur) => {
                wasted_cpu += *dur;
                t = res.cpu(node, t, *dur);
            }
            Effect::Spill(op) => {
                wasted_bytes += op.written;
                t = res.spill_io(node, t, IoCategory::ReduceSpill, *op, &cost);
            }
            Effect::Emit(pairs) => {
                let bytes: u64 = pairs.iter().map(Pair::size).sum();
                wasted_bytes += bytes;
                t = res.hdfs_io(node, t, IoCategory::ReduceOutput, IoOp::write(bytes), &cost);
            }
            Effect::Snapshot(bytes) => {
                wasted_bytes += bytes;
                t = res.hdfs_io(
                    node,
                    t,
                    IoCategory::ReduceOutput,
                    IoOp::write(*bytes),
                    &cost,
                );
            }
            // Progress was already acknowledged by the first execution and
            // timeline spans must not duplicate.
            Effect::Shuffled(_) | Effect::Worked(_) | Effect::SpanOpen | Effect::SpanClose(_) => {}
        }
    }
    res.end_recovery();
    RecoveryCost {
        ready_at: t,
        wasted_bytes,
        wasted_cpu,
    }
}

/// A framework-neutral serialization of one reducer's resident state, the
/// unit the stream runtime's checkpoints are built from.
///
/// Each framework packs its internals into flat typed sections — `u64`
/// arrays, pair runs, state runs — that map 1:1 onto
/// [`opa_simio::ckpt::Section`]s. The layout of the sections is private to
/// the framework: only the matching framework (identified by `tag`) can
/// re-import a checkpoint, and [`ReduceSide::import_state`] rejects a
/// mismatched tag.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReducerCkpt {
    /// Framework discriminant: 1 = sort-merge (both variants), 2 = MR-hash,
    /// 3 = INC-hash, 4 = DINC-hash.
    pub tag: u8,
    /// Framework-private boolean/enum flags, bit-packed.
    pub flags: u64,
    /// Event-time watermark at checkpoint, if the framework tracks one.
    pub watermark: Option<u64>,
    /// Numeric sections (counters, per-run lengths, monitor counts…).
    pub nums: Vec<Vec<u64>>,
    /// Pair-run sections (spill runs, pending output…).
    pub pairs: Vec<Vec<Pair>>,
    /// State-run sections (hash-table contents, bucket files…).
    pub states: Vec<Vec<StatePair>>,
}

impl ReducerCkpt {
    /// [`ReducerCkpt::tag`] of the sort-merge frameworks (both variants).
    pub const TAG_SORT_MERGE: u8 = 1;
    /// [`ReducerCkpt::tag`] of the MR-hash framework.
    pub const TAG_MR_HASH: u8 = 2;
    /// [`ReducerCkpt::tag`] of the INC-hash framework.
    pub const TAG_INC_HASH: u8 = 3;
    /// [`ReducerCkpt::tag`] of the DINC-hash framework.
    pub const TAG_DINC_HASH: u8 = 4;
}

/// One entry of a DINC top-k answer: the key, its estimated frequency
/// (a lower bound under FREQUENT), and its resident partial state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopEntry {
    /// The monitored key.
    pub key: Key,
    /// Estimated occurrence count.
    pub count: u64,
    /// The key's current partial aggregate state.
    pub state: Value,
}

/// Batches reducer output into 64 KB HDFS writes and keeps the output
/// component of Definition-1 progress current.
pub struct OutputSink {
    pending: Vec<Pair>,
    pending_bytes: u64,
    flush_at: u64,
}

impl OutputSink {
    /// A sink flushing every 64 KB.
    pub fn new() -> Self {
        OutputSink {
            pending: Vec::new(),
            pending_bytes: 0,
            flush_at: 64 * 1024,
        }
    }

    /// Queues pairs emitted at time `t`; flushes to HDFS if the write
    /// buffer filled. Returns the (possibly advanced) clock.
    pub fn push(&mut self, t: SimTime, pairs: Vec<Pair>, env: &mut ReduceEnv<'_>) -> SimTime {
        if pairs.is_empty() {
            return t;
        }
        for p in &pairs {
            self.pending_bytes += p.size();
        }
        self.pending.extend(pairs);
        if self.pending_bytes >= self.flush_at {
            self.flush(t, env)
        } else {
            t
        }
    }

    /// Flushes everything queued.
    pub fn flush(&mut self, t: SimTime, env: &mut ReduceEnv<'_>) -> SimTime {
        if self.pending.is_empty() {
            return t;
        }
        self.pending_bytes = 0;
        env.emit(t, std::mem::take(&mut self.pending))
    }

    /// Copy of the not-yet-flushed output buffer (checkpointing).
    pub(crate) fn export_pending(&self) -> Vec<Pair> {
        self.pending.clone()
    }

    /// Refills the output buffer of a fresh sink (restore path).
    pub(crate) fn restore_pending(&mut self, pending: Vec<Pair>) {
        debug_assert!(self.pending.is_empty(), "restore into a non-empty sink");
        self.pending_bytes = pending.iter().map(Pair::size).sum();
        self.pending = pending;
    }
}

impl Default for OutputSink {
    fn default() -> Self {
        OutputSink::new()
    }
}

/// A reduce-side framework instance serving one reduce task.
pub trait ReduceSide {
    /// Handles one shuffle delivery arriving at `t`. Returns the time the
    /// reducer is next free.
    fn on_delivery(&mut self, t: SimTime, payload: Payload, env: &mut ReduceEnv<'_>) -> SimTime;

    /// Called once after the final delivery; completes all processing and
    /// returns the reducer's finish time.
    fn finish(&mut self, t: SimTime, env: &mut ReduceEnv<'_>) -> SimTime;

    /// DINC monitor statistics, if this reducer runs DINC-hash.
    fn dinc_stats(&self) -> Option<crate::metrics::DincStats> {
        None
    }

    /// Frequency-gated admission statistics, if this reducer ran with the
    /// LFU admission policy enabled.
    fn admission_stats(&self) -> Option<crate::metrics::AdmissionStats> {
        None
    }

    /// Produces a snapshot of the current (partial) answer — MapReduce
    /// Online's periodic outputs (§3.3). The default is a no-op; the
    /// sort-merge framework implements it by *repeating the merge* over
    /// everything received so far, which is exactly why the paper finds
    /// snapshots expensive.
    fn snapshot(&mut self, t: SimTime, _env: &mut ReduceEnv<'_>) -> SimTime {
        t
    }

    /// Serializes this reducer's resident state for a stream checkpoint.
    /// All built-in frameworks implement this; the default errors so
    /// third-party reducers opt in explicitly.
    fn export_state(&self) -> Result<ReducerCkpt> {
        Err(Error::job(
            "this reduce-side framework does not support checkpointing",
        ))
    }

    /// Restores state exported by [`ReduceSide::export_state`] into a
    /// freshly constructed reducer that has absorbed no deliveries.
    /// Rejects a checkpoint whose `tag` names a different framework.
    fn import_state(&mut self, _ckpt: ReducerCkpt) -> Result<()> {
        Err(Error::job(
            "this reduce-side framework does not support checkpointing",
        ))
    }

    /// Point lookup of a key's *resident* partial aggregate, served between
    /// micro-batches. `None` means this framework keeps no queryable
    /// in-memory state for the key (sort-merge and MR-hash buffer raw runs;
    /// INC/DINC answer from their hash table / monitor). Spilled partials
    /// merge only at `finish`, so a hit is a partial answer over everything
    /// absorbed into memory so far.
    fn query(&self, _key: &Key) -> Option<Value> {
        None
    }

    /// The top monitored keys by estimated frequency, with the monitor's
    /// coverage lower bound γ (Theorem 1 of the paper). Only DINC-hash —
    /// the framework that actually maintains a frequency monitor — answers;
    /// others return `None`.
    fn top_entries(&self, _k: usize) -> Option<(Vec<TopEntry>, f64)> {
        None
    }

    /// Event-time watermark: the largest event time absorbed into state,
    /// if the job extracts event times. `None` when untracked.
    fn watermark(&self) -> Option<u64> {
        None
    }
}

/// Instantiates the reduce-side framework for one reduce task. The box is
/// `Send` so the execution layer can record deliveries on worker threads.
pub fn make_reducer<'j>(
    framework: Framework,
    job: &'j dyn Job,
    spec: &ClusterSpec,
    sizing: ReducerSizing,
    family: &HashFamily,
) -> Result<Box<dyn ReduceSide + Send + 'j>> {
    match framework {
        Framework::SortMerge | Framework::SortMergePipelined => {
            Ok(Box::new(sort_merge::SortMergeReducer::new(job, spec)))
        }
        Framework::MrHash => Ok(Box::new(mr_hash::MrHashReducer::new(
            job, spec, sizing, family,
        ))),
        Framework::IncHash => {
            let _ = job.incremental().ok_or_else(|| {
                Error::job("INC-hash requires the job to implement IncrementalReducer")
            })?;
            Ok(Box::new(inc_hash::IncHashReducer::new(
                job, spec, sizing, family,
            )))
        }
        Framework::DincHash => {
            let _ = job.incremental().ok_or_else(|| {
                Error::job("DINC-hash requires the job to implement IncrementalReducer")
            })?;
            Ok(Box::new(dinc_hash::DincHashReducer::new(
                job, spec, sizing, family,
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_count_scales_with_key_space() {
        let small = ReducerSizing {
            expected_input: 1 << 20,
            expected_keys: 100,
            state_size: 64,
            early_stop_coverage: None,
            monitor: dinc_hash::MonitorKind::Frequent,
            admission: opa_common::AdmissionPolicy::Off,
        };
        // 100 keys × 64 B = 6.4 KB fits easily in 1 MB → one bucket.
        assert_eq!(small.bucket_count(1 << 20, 1024), 1);

        let large = ReducerSizing {
            expected_input: 1 << 30,
            expected_keys: 1 << 20,
            state_size: 512,
            early_stop_coverage: None,
            monitor: dinc_hash::MonitorKind::Frequent,
            admission: opa_common::AdmissionPolicy::Off,
        };
        // 1 Mi keys × 512 B = 512 MB over 1 MB memory → many buckets,
        // clamped by write-buffer room.
        let h = large.bucket_count(1 << 20, 1024);
        assert!(h > 1);
        assert!(h as u64 <= (1 << 20) / 2048);
    }

    #[test]
    fn bucket_count_never_zero() {
        let s = ReducerSizing {
            expected_input: 0,
            expected_keys: 0,
            state_size: 0,
            early_stop_coverage: None,
            monitor: dinc_hash::MonitorKind::Frequent,
            admission: opa_common::AdmissionPolicy::Off,
        };
        assert_eq!(s.bucket_count(1024, 512), 1);
    }

    #[test]
    fn recording_env_estimates_time_and_logs_effects() {
        // The paper cluster has real (nonzero) disk costs.
        let spec = ClusterSpec::paper_scaled();
        let mut env = ReduceEnv::new(&spec);
        let t0 = SimTime::ZERO;
        let t1 = env.cpu(t0, SimDuration::from_secs_f64(1.0));
        assert!(t1 > t0, "cpu advances the local estimate");
        let t2 = env.spill(t1, IoOp::write(4096));
        assert!(t2 > t1, "spill advances the local estimate");
        assert_eq!(env.spill(t2, IoOp::NONE), t2, "empty I/O is free");
        env.shuffled(t2, 4096);
        env.worked(t2, 7);
        let log = env.into_log();
        assert_eq!(log.len(), 4, "empty I/O must not be logged");
        assert!(matches!(log[0], Effect::Cpu(_)));
        assert!(matches!(log[1], Effect::Spill(_)));
        assert!(matches!(log[2], Effect::Shuffled(4096)));
        assert!(matches!(log[3], Effect::Worked(7)));
    }
}
