//! Reduce-side frameworks.
//!
//! Each framework implements [`ReduceSide`]: the engine feeds it shuffle
//! deliveries as mappers complete, then calls `finish` once the last
//! delivery has arrived. All five share [`ReduceEnv`] (the reducer's view
//! of the simulated node) and [`OutputSink`] (batched HDFS output writes +
//! progress accounting).

pub mod dinc_hash;
pub mod inc_hash;
pub mod mr_hash;
pub mod sort_merge;

#[cfg(test)]
#[path = "tests.rs"]
mod tests_frameworks;

use crate::api::Job;
use crate::cluster::{ClusterSpec, Framework};
use crate::cost::CostModel;
use crate::map_phase::Payload;
use crate::progress::ProgressTracker;
use crate::sim::Resources;
use opa_common::units::{SimDuration, SimTime};
use opa_common::{Error, HashFamily, Pair, Result};
use opa_simio::{IoCategory, IoOp};

/// Advance-the-clock batch size: user-function work is priced per record
/// but committed to the simulation in batches this large, so progress
/// curves rise smoothly without one event per record.
pub(crate) const WORK_BATCH: u64 = 512;

/// Sizing hints the engine derives for each reducer from job hints and the
/// cluster spec.
#[derive(Debug, Clone, Copy)]
pub struct ReducerSizing {
    /// Expected bytes of shuffle input this reducer will receive.
    pub expected_input: u64,
    /// Expected distinct keys this reducer will see.
    pub expected_keys: u64,
    /// Typical key-state pair size in bytes.
    pub state_size: u64,
    /// DINC approximate mode: coverage threshold φ at which monitored keys
    /// may be finalized from partial state, skipping disk (§4.3). `None`
    /// requests exact processing.
    pub early_stop_coverage: Option<f64>,
    /// Which frequency algorithm drives the DINC monitor.
    pub monitor: dinc_hash::MonitorKind,
}

impl ReducerSizing {
    /// Bucket fan-out `h` such that one bucket's keys fit in `mem` bytes:
    /// `h = ⌈K·entry/mem⌉`, clamped to leave room for write buffers.
    pub fn bucket_count(&self, mem: u64, write_buffer: u64) -> usize {
        let entry = self.state_size.max(1);
        let needed = (self.expected_keys.max(1) * entry).div_ceil(mem.max(1));
        let max_h = (mem / (2 * write_buffer.max(1))).max(1);
        (needed.max(1) as usize).min(max_h as usize)
    }
}

/// The reducer's handle on shared simulation state.
pub struct ReduceEnv<'a> {
    /// Node hosting this reducer.
    pub node: usize,
    /// Cluster configuration.
    pub spec: &'a ClusterSpec,
    /// Shared disks / usage / timeline / IoStats.
    pub res: &'a mut Resources,
    /// Job-wide progress tracker.
    pub progress: &'a mut ProgressTracker,
    /// Job-wide collected output.
    pub output: &'a mut Vec<Pair>,
    /// CPU seconds consumed by this reducer (engine aggregates per node).
    pub reduce_cpu: &'a mut SimDuration,
    /// Reduce-side spill bytes written (Tables 1/3/4 "Reduce spill").
    pub spill_written: &'a mut u64,
    /// Snapshot output bytes (HOP's periodic approximate outputs, §3.3).
    pub snapshot_bytes: &'a mut u64,
}

impl ReduceEnv<'_> {
    /// Shortcut: cost model.
    pub fn cost(&self) -> &CostModel {
        &self.spec.cost
    }

    /// Charges CPU to this reducer starting at `t`; returns completion.
    pub fn cpu(&mut self, t: SimTime, dur: SimDuration) -> SimTime {
        *self.reduce_cpu += dur;
        self.res.cpu(self.node, t, dur)
    }

    /// Performs a reduce-spill I/O (category `U_4`) and tracks written
    /// bytes in the spill metric.
    pub fn spill(&mut self, t: SimTime, op: IoOp) -> SimTime {
        *self.spill_written += op.written;
        let cost = self.spec.cost;
        self.res
            .spill_io(self.node, t, IoCategory::ReduceSpill, op, &cost)
    }
}

/// Batches reducer output into 64 KB HDFS writes and keeps the output
/// component of Definition-1 progress current.
pub struct OutputSink {
    pending: Vec<Pair>,
    pending_bytes: u64,
    flush_at: u64,
}

impl OutputSink {
    /// A sink flushing every 64 KB.
    pub fn new() -> Self {
        OutputSink {
            pending: Vec::new(),
            pending_bytes: 0,
            flush_at: 64 * 1024,
        }
    }

    /// Queues pairs emitted at time `t`; flushes to HDFS if the write
    /// buffer filled. Returns the (possibly advanced) clock.
    pub fn push(&mut self, t: SimTime, pairs: Vec<Pair>, env: &mut ReduceEnv<'_>) -> SimTime {
        if pairs.is_empty() {
            return t;
        }
        for p in &pairs {
            self.pending_bytes += p.size();
        }
        self.pending.extend(pairs);
        if self.pending_bytes >= self.flush_at {
            self.flush(t, env)
        } else {
            t
        }
    }

    /// Flushes everything queued.
    pub fn flush(&mut self, t: SimTime, env: &mut ReduceEnv<'_>) -> SimTime {
        if self.pending.is_empty() {
            return t;
        }
        let bytes = self.pending_bytes;
        let cost = env.spec.cost;
        let t = env
            .res
            .hdfs_io(env.node, t, IoCategory::ReduceOutput, IoOp::write(bytes), &cost);
        env.progress.emitted(t, bytes);
        env.output.append(&mut self.pending);
        self.pending_bytes = 0;
        t
    }
}

impl Default for OutputSink {
    fn default() -> Self {
        OutputSink::new()
    }
}

/// A reduce-side framework instance serving one reduce task.
pub trait ReduceSide {
    /// Handles one shuffle delivery arriving at `t`. Returns the time the
    /// reducer is next free.
    fn on_delivery(&mut self, t: SimTime, payload: Payload, env: &mut ReduceEnv<'_>) -> SimTime;

    /// Called once after the final delivery; completes all processing and
    /// returns the reducer's finish time.
    fn finish(&mut self, t: SimTime, env: &mut ReduceEnv<'_>) -> SimTime;

    /// DINC monitor statistics, if this reducer runs DINC-hash.
    fn dinc_stats(&self) -> Option<crate::metrics::DincStats> {
        None
    }

    /// Produces a snapshot of the current (partial) answer — MapReduce
    /// Online's periodic outputs (§3.3). The default is a no-op; the
    /// sort-merge framework implements it by *repeating the merge* over
    /// everything received so far, which is exactly why the paper finds
    /// snapshots expensive.
    fn snapshot(&mut self, t: SimTime, _env: &mut ReduceEnv<'_>) -> SimTime {
        t
    }
}

/// Instantiates the reduce-side framework for one reduce task.
pub fn make_reducer<'j>(
    framework: Framework,
    job: &'j dyn Job,
    spec: &ClusterSpec,
    sizing: ReducerSizing,
    family: &HashFamily,
) -> Result<Box<dyn ReduceSide + 'j>> {
    match framework {
        Framework::SortMerge | Framework::SortMergePipelined => {
            Ok(Box::new(sort_merge::SortMergeReducer::new(job, spec)))
        }
        Framework::MrHash => Ok(Box::new(mr_hash::MrHashReducer::new(
            job, spec, sizing, family,
        ))),
        Framework::IncHash => {
            let _ = job.incremental().ok_or_else(|| {
                Error::job("INC-hash requires the job to implement IncrementalReducer")
            })?;
            Ok(Box::new(inc_hash::IncHashReducer::new(
                job, spec, sizing, family,
            )))
        }
        Framework::DincHash => {
            let _ = job.incremental().ok_or_else(|| {
                Error::job("DINC-hash requires the job to implement IncrementalReducer")
            })?;
            Ok(Box::new(dinc_hash::DincHashReducer::new(
                job, spec, sizing, family,
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_count_scales_with_key_space() {
        let small = ReducerSizing {
            expected_input: 1 << 20,
            expected_keys: 100,
            state_size: 64,
            early_stop_coverage: None,
            monitor: dinc_hash::MonitorKind::Frequent,
        };
        // 100 keys × 64 B = 6.4 KB fits easily in 1 MB → one bucket.
        assert_eq!(small.bucket_count(1 << 20, 1024), 1);

        let large = ReducerSizing {
            expected_input: 1 << 30,
            expected_keys: 1 << 20,
            state_size: 512,
            early_stop_coverage: None,
            monitor: dinc_hash::MonitorKind::Frequent,
        };
        // 1 Mi keys × 512 B = 512 MB over 1 MB memory → many buckets,
        // clamped by write-buffer room.
        let h = large.bucket_count(1 << 20, 1024);
        assert!(h > 1);
        assert!(h as u64 <= (1 << 20) / 2048);
    }

    #[test]
    fn bucket_count_never_zero() {
        let s = ReducerSizing {
            expected_input: 0,
            expected_keys: 0,
            state_size: 0,
            early_stop_coverage: None,
            monitor: dinc_hash::MonitorKind::Frequent,
        };
        assert_eq!(s.bucket_count(1024, 512), 1);
    }
}
