//! MR-hash: the basic hash technique (§4.1).
//!
//! Incoming pairs are partitioned by `h2` into `n` buckets; the first
//! bucket `D1` is pinned in memory, the rest stream to disk through paged
//! write buffers (hybrid hash join). After the input ends, `D1` is grouped
//! in memory by `h3` and reduced; the on-disk buckets are then read back
//! one at a time, recursively re-partitioned by `h4, h5, …` should one
//! exceed memory. No sort ever happens, but the reduce function still
//! cannot run before all input has arrived (full value lists), so reduce
//! progress blocks at 33% just like sort-merge — the difference is the CPU
//! saved and the early answers possible for `D1`.

use super::{OutputSink, ReduceEnv, ReduceSide, ReducerCkpt, ReducerSizing, WORK_BATCH};
use crate::api::{Job, ReduceCtx};
use crate::cluster::ClusterSpec;
use crate::map_phase::Payload;
use crate::sim::OpKind;
use opa_common::units::SimTime;
use opa_common::{
    Error, HashFamily, HashFn, Key, Pair, Result, SeededState, ShardedGroupIndex, Value,
};
use opa_simio::BucketManager;
use std::collections::HashMap;

/// [`ReducerCkpt::tag`] of the MR-hash framework.
pub(crate) const CKPT_TAG: u8 = 2;

/// Recursive partitioning depth limit; `h2..h8` is far beyond anything a
/// sane configuration needs (each level multiplies capacity by the fan-out).
const MAX_DEPTH: usize = 6;

/// One reduce task running the MR-hash framework.
pub struct MrHashReducer<'j> {
    job: &'j dyn Job,
    family: HashFamily,
    h1: HashFn,
    h2: HashFn,
    mem_budget: u64,
    write_buffer: u64,
    /// `D1`: the memory-resident bucket.
    d1: Vec<Pair>,
    d1_bytes: u64,
    d1_budget: u64,
    /// On-disk buckets (index 0 doubles as the D1 overflow file).
    buckets: BucketManager<Pair>,
    n_buckets: usize,
    sink: OutputSink,
}

impl<'j> MrHashReducer<'j> {
    /// Creates the reducer, sizing the bucket fan-out from the expected
    /// reducer input (hybrid-hash style: each on-disk bucket should fit in
    /// memory when read back).
    pub fn new(
        job: &'j dyn Job,
        spec: &ClusterSpec,
        sizing: ReducerSizing,
        family: &HashFamily,
    ) -> Self {
        let mem = spec.hardware.reduce_buffer;
        let write_buffer = spec.bucket_write_buffer;
        // Buckets needed so one bucket ≈ fits in 80% of memory; +1 for D1.
        let per_bucket = (mem as f64 * 0.8).max(1.0);
        let disk_buckets = ((sizing.expected_input as f64 / per_bucket).ceil() as usize)
            .clamp(1, (mem / (2 * write_buffer)).max(1) as usize);
        let n_buckets = disk_buckets + 1;
        let d1_budget = mem
            .saturating_sub(disk_buckets as u64 * write_buffer)
            .max(1);
        MrHashReducer {
            job,
            family: family.clone(),
            h1: family.fn_at(0),
            h2: family.fn_at(1),
            mem_budget: mem,
            write_buffer,
            d1: Vec::new(),
            d1_bytes: 0,
            d1_budget,
            buckets: BucketManager::new(disk_buckets, write_buffer),
            n_buckets,
            sink: OutputSink::new(),
        }
    }

    /// Groups `pairs` by key with the depth-`d` hash function and streams
    /// each group through the reduce function.
    fn reduce_in_memory(
        &mut self,
        mut t: SimTime,
        pairs: Vec<Pair>,
        env: &mut ReduceEnv<'_>,
    ) -> SimTime {
        let n = pairs.len() as u64;
        t = env.cpu(t, env.cost().hash_time(n));
        // Insertion-ordered group-by: the index stores fingerprints and
        // row ids only (no key clones), probed with the same `h1`
        // fingerprint the map side partitions with — hashed once per pair.
        let mut groups: Vec<(Key, Vec<Value>)> = Vec::new();
        let mut index = ShardedGroupIndex::with_capacity(pairs.len() / 4 + 1);
        for p in pairs {
            let h = self.h1.hash(p.key.bytes());
            match index.get(h, |r| groups[r].0 == p.key) {
                Some(i) => groups[i].1.push(p.value),
                None => {
                    index.insert(h, groups.len());
                    groups.push((p.key, vec![p.value]));
                }
            }
        }
        let mut ctx = ReduceCtx::new();
        let mut batch = 0u64;
        for (key, values) in groups {
            let n = values.len() as u64;
            self.job.reduce(&key, values, &mut ctx);
            batch += n;
            if batch >= WORK_BATCH {
                t = env.cpu(t, env.cost().reduce_time(batch));
                env.worked(t, batch);
                batch = 0;
                t = self.sink.push(t, ctx.drain(), env);
            }
        }
        if batch > 0 {
            t = env.cpu(t, env.cost().reduce_time(batch));
            env.worked(t, batch);
        }
        self.sink.push(t, ctx.drain(), env)
    }

    /// Processes one staged bucket: reduce in memory if it fits, otherwise
    /// recursively partition with the next hash function.
    fn process_bucket(
        &mut self,
        mut t: SimTime,
        pairs: Vec<Pair>,
        depth: usize,
        env: &mut ReduceEnv<'_>,
    ) -> SimTime {
        let bytes: u64 = pairs.iter().map(Pair::size).sum();
        if bytes <= self.mem_budget || depth >= MAX_DEPTH {
            return self.reduce_in_memory(t, pairs, env);
        }
        // Rehashing cannot split a bucket whose size is dominated by one
        // hot key: its pairs collide under every hash function. When even
        // a perfect split leaves the hot key's group over memory, further
        // partitioning only rewrites bytes — fall back to in-memory
        // processing (what the paper's skew-aware hash customization in §5
        // exists to avoid).
        let mut per_key: HashMap<&Key, u64, SeededState> =
            HashMap::with_hasher(SeededState::fixed());
        for p in &pairs {
            *per_key.entry(&p.key).or_default() += p.size();
        }
        let dominant = per_key.values().copied().max().unwrap_or(0);
        if dominant > self.mem_budget || per_key.len() == 1 {
            return self.reduce_in_memory(t, pairs, env);
        }
        // Recursive partitioning with h_{depth}.
        let h = self.family.fn_at(depth);
        let fan = ((bytes as f64 / (self.mem_budget as f64 * 0.8)).ceil() as usize).max(2);
        let mut sub: BucketManager<Pair> = BucketManager::new(fan, self.write_buffer);
        t = env.cpu(t, env.cost().hash_time(pairs.len() as u64));
        for p in pairs {
            let b = h.bucket(p.key.bytes(), fan);
            let op = sub.push(b, p);
            t = env.spill(t, op);
        }
        let op = sub.seal();
        t = env.spill(t, op);
        for b in 0..fan {
            let (recs, op) = sub.take_bucket(b);
            t = env.spill(t, op);
            if !recs.is_empty() {
                t = self.process_bucket(t, recs, depth + 1, env);
            }
        }
        t
    }
}

impl ReduceSide for MrHashReducer<'_> {
    fn on_delivery(
        &mut self,
        mut t: SimTime,
        payload: Payload,
        env: &mut ReduceEnv<'_>,
    ) -> SimTime {
        let Payload::Pairs(pairs) = payload else {
            unreachable!("MR-hash receives key-value pairs");
        };
        let bytes: u64 = pairs.iter().map(Pair::size).sum();
        env.shuffled(t, bytes);
        t = env.cpu(t, env.cost().hash_time(pairs.len() as u64));
        for p in pairs {
            let b = self.h2.bucket(p.key.bytes(), self.n_buckets);
            if b == 0 {
                let sz = p.size();
                if self.d1_bytes + sz <= self.d1_budget {
                    self.d1_bytes += sz;
                    self.d1.push(p);
                } else {
                    // D1 overflow shares bucket file 0.
                    let op = self.buckets.push(0, p);
                    t = env.spill(t, op);
                }
            } else {
                let op = self.buckets.push(b - 1, p);
                t = env.spill(t, op);
            }
        }
        t
    }

    fn finish(&mut self, mut t: SimTime, env: &mut ReduceEnv<'_>) -> SimTime {
        env.span_open();
        let op = self.buckets.seal();
        t = env.spill(t, op);
        // Phase 1: the memory-resident bucket, joined with its overflow
        // file (keys hashing to bucket 0 may have pairs in both — they
        // must be grouped together).
        let mut d1 = std::mem::take(&mut self.d1);
        self.d1_bytes = 0;
        let (overflow, op) = self.buckets.take_bucket(0);
        t = env.spill(t, op);
        let had_overflow = !overflow.is_empty();
        d1.extend(overflow);
        if had_overflow {
            t = self.process_bucket(t, d1, 3, env);
        } else {
            t = self.reduce_in_memory(t, d1, env);
        }
        // Phase 2: the remaining staged buckets, one at a time.
        for b in 1..self.buckets.num_buckets() {
            let (recs, op) = self.buckets.take_bucket(b);
            t = env.spill(t, op);
            if !recs.is_empty() {
                t = self.process_bucket(t, recs, 3, env);
            }
        }
        t = self.sink.flush(t, env);
        env.span_close(OpKind::Reduce);
        t
    }

    /// Sections: `pairs` holds `D1`, then one section per on-disk bucket
    /// (arrival order), then the pending output buffer. The bucket count is
    /// derivable from the (identical) config on restore, so no `nums`.
    fn export_state(&self) -> Result<ReducerCkpt> {
        let mut pairs = vec![self.d1.clone()];
        pairs.extend(self.buckets.export_contents());
        pairs.push(self.sink.export_pending());
        Ok(ReducerCkpt {
            tag: CKPT_TAG,
            pairs,
            ..ReducerCkpt::default()
        })
    }

    fn import_state(&mut self, ckpt: ReducerCkpt) -> Result<()> {
        if ckpt.tag != CKPT_TAG {
            return Err(Error::job(format!(
                "checkpoint tag {} is not MR-hash ({CKPT_TAG})",
                ckpt.tag
            )));
        }
        let mut sections = ckpt.pairs;
        if sections.len() != self.buckets.num_buckets() + 2 {
            return Err(Error::job(
                "MR-hash checkpoint bucket count mismatch — restore requires \
                 the same cluster spec and sizing hints as the original run",
            ));
        }
        let pending = sections.pop().expect("length checked");
        let d1 = sections.remove(0);
        self.d1_bytes = d1.iter().map(Pair::size).sum();
        self.d1 = d1;
        self.buckets.restore_contents(sections);
        self.sink.restore_pending(pending);
        Ok(())
    }
}
