//! INC-hash: the incremental hash technique (§4.2).
//!
//! The reducer keeps an in-memory table `H` from key to the state of the
//! computation. A tuple whose key is in `H` is collapsed immediately with
//! `cb()` — no I/O, ever, and any early output (a closed session, a counter
//! crossing a threshold) flows straight to HDFS, which is why INC-hash
//! reduce progress can track map progress. A tuple whose key is absent is
//! admitted while memory lasts and staged to an `h3` bucket afterwards;
//! staged buckets are processed one at a time after the input ends.
//!
//! Key invariant (and the reason INC-hash output is exact even for
//! order-sensitive jobs like sessionization): a key is either resident in
//! `H` from its first appearance, or *all* of its tuples go to the same
//! bucket — a key's data is never split between memory and disk.

use super::{OutputSink, ReduceEnv, ReduceSide, ReducerCkpt, ReducerSizing, WORK_BATCH};
use crate::api::{IncrementalReducer, Job, ReduceCtx};
use crate::cluster::ClusterSpec;
use crate::map_phase::Payload;
use crate::metrics::AdmissionStats;
use crate::sim::OpKind;
use opa_common::units::SimTime;
use opa_common::{
    AdmissionPolicy, Error, FreqSketch, HashFamily, HashFn, Key, KeyFilter, Result,
    ShardedGroupIndex, StatePair, Value,
};
use opa_simio::BucketManager;

/// [`ReducerCkpt::tag`] of the INC-hash framework.
pub(crate) const CKPT_TAG: u8 = 3;

/// [`ReducerCkpt::flags`] bit: admissions were closed by a memory overflow.
const FLAG_ADMISSIONS_CLOSED: u64 = 1;

/// Per-entry bookkeeping overhead charged against the memory budget
/// (hash-table slot, indices), mirroring the byte-array memory managers of
/// the prototype (§5).
const ENTRY_OVERHEAD: u64 = 16;

/// Recursion ceiling for pathological bucket skew.
const MAX_DEPTH: usize = 6;

/// How many resident keys the LFU victim scan examines per table-full
/// arrival. A small constant keeps the gate O(1) while the rotating
/// cursor guarantees every resident is eventually considered.
const VICTIM_PROBES: usize = 4;

/// One reduce task running the INC-hash framework.
pub struct IncHashReducer<'j> {
    inc: &'j dyn IncrementalReducer,
    family: HashFamily,
    /// Partitioning function — its fingerprints arrive cached in every
    /// delivered batch and double as the table-probe hash.
    h1: HashFn,
    h3: HashFn,
    /// Insertion-ordered key→state table (`H`).
    states: Vec<(Key, Value)>,
    /// Tuples combined into each resident row (parallel to `states`);
    /// summed at finish into the resident-frequency statistic.
    counts: Vec<u64>,
    index: ShardedGroupIndex,
    mem_used: u64,
    mem_budget: u64,
    write_buffer: u64,
    buckets: BucketManager<StatePair>,
    ctx: ReduceCtx,
    sink: OutputSink,
    /// Tuples absorbed in memory during the streaming phase.
    absorbed: u64,
    /// Set on the first rejection: no further keys are admitted even if
    /// draining states later frees memory. A key admitted after one of its
    /// tuples spilled would be split between memory and disk, breaking the
    /// module invariant ("the keys chosen for in-memory processing are
    /// just the first keys observed" — paper §4.3). Only consulted under
    /// [`AdmissionPolicy::Off`]; the LFU gate replaces it with the
    /// spilled-key filter below.
    admissions_closed: bool,
    /// Which admission policy gates table-full arrivals.
    admission: AdmissionPolicy,
    /// Frequency sketch over `h1` fingerprints (LFU policy only). Touched
    /// on *every* arrival, so its state is a pure function of the
    /// reducer's delivered tuple order.
    sketch: Option<FreqSketch>,
    /// Keys that ever spilled a tuple or were evicted (LFU policy only).
    /// Membership denies admission: a resident key is thereby guaranteed
    /// to have no bytes on disk, preserving the never-split invariant
    /// that makes direct finalization exact.
    filter: Option<KeyFilter>,
    /// Rotating start position of the deterministic victim scan.
    victim_cursor: u64,
    /// Admission counters (populated for both policies; the eviction
    /// fields stay zero under [`AdmissionPolicy::Off`]).
    stats: AdmissionStats,
}

impl<'j> IncHashReducer<'j> {
    /// Creates the reducer; the bucket fan-out follows the paper's
    /// `h = K·n_p/B` sizing so each staged bucket's keys fit in memory.
    pub fn new(
        job: &'j dyn Job,
        spec: &ClusterSpec,
        sizing: ReducerSizing,
        family: &HashFamily,
    ) -> Self {
        let inc = job.incremental().expect("checked by make_reducer");
        let mem = spec.hardware.reduce_buffer;
        let write_buffer = spec.bucket_write_buffer;
        let h = sizing.bucket_count(mem, write_buffer);
        let mem_budget = mem.saturating_sub(h as u64 * write_buffer).max(1);
        let admission = sizing.admission;
        let expected = (sizing.expected_keys as usize).clamp(64, 1 << 22);
        IncHashReducer {
            inc,
            family: family.clone(),
            h1: family.fn_at(0),
            h3: family.fn_at(2),
            states: Vec::new(),
            counts: Vec::new(),
            index: ShardedGroupIndex::default(),
            mem_used: 0,
            mem_budget,
            write_buffer,
            buckets: BucketManager::new(h, write_buffer),
            ctx: ReduceCtx::new(),
            sink: OutputSink::new(),
            absorbed: 0,
            admissions_closed: false,
            admission,
            sketch: admission
                .is_on()
                .then(|| FreqSketch::with_capacity(expected)),
            filter: admission
                .is_on()
                .then(|| KeyFilter::with_capacity(expected)),
            victim_cursor: 0,
            stats: AdmissionStats::default(),
        }
    }

    /// Streams one tuple through the table, probing with the batch-carried
    /// `h1` fingerprint when the shuffle delivered one (re-hashing only
    /// for restored tuples whose cache was dropped). Returns the advanced
    /// clock.
    fn absorb(
        &mut self,
        mut t: SimTime,
        sp: StatePair,
        hash: Option<u64>,
        env: &mut ReduceEnv<'_>,
    ) -> SimTime {
        if let Some(ts) = self.inc.event_time(&sp.state) {
            self.ctx.advance_watermark(ts);
        }
        let h = hash.unwrap_or_else(|| self.h1.hash(sp.key.bytes()));
        self.stats.offered += 1;
        if let Some(sketch) = &mut self.sketch {
            // Every arrival is recorded, hit or miss, so the sketch is a
            // pure function of the delivered tuple order.
            sketch.touch(h);
        }
        match self.index.get(h, |r| self.states[r].0 == sp.key) {
            Some(i) => {
                let (ref key, ref mut acc) = self.states[i];
                let before = self.inc.state_mem_size(acc);
                self.inc.cb(key, acc, sp.state, &mut self.ctx);
                let after = self.inc.state_mem_size(acc);
                self.mem_used = adjust(self.mem_used, before, after);
                self.counts[i] += 1;
                t = env.cpu(t, env.cost().cb_time(1) + env.cost().hash_time(1));
                self.absorbed += 1;
                self.stats.absorbed += 1;
                env.worked(t, 1);
                if self.ctx.pending() > 0 {
                    let out = self.ctx.drain();
                    t = self.sink.push(t, out, env);
                }
            }
            None if self.admission.is_on() => {
                t = self.absorb_miss_lfu(t, sp, h, env);
            }
            None => {
                let sz = sp.key.len() as u64 + self.inc.state_mem_size(&sp.state) + ENTRY_OVERHEAD;
                if !self.admissions_closed && self.mem_used + sz <= self.mem_budget {
                    self.mem_used += sz;
                    self.index.insert(h, self.states.len());
                    self.states.push((sp.key, sp.state));
                    self.counts.push(1);
                    t = env.cpu(t, env.cost().hash_time(1));
                    self.absorbed += 1;
                    self.stats.absorbed += 1;
                    env.worked(t, 1);
                } else {
                    self.admissions_closed = true;
                    self.stats.rejected += 1;
                    self.stats.spill.rejected_arrival += sp.size();
                    let b = self.h3.bucket(sp.key.bytes(), self.buckets.num_buckets());
                    let op = self.buckets.push(b, sp);
                    t = env.spill(t, op);
                }
            }
        }
        t
    }

    /// Table-miss handling under the LFU policy: admit clean keys while
    /// memory lasts, otherwise either evict a colder resident (staging its
    /// state through the normal spill path) or spill the arrival.
    ///
    /// Exactness: only keys absent from [`IncHashReducer::filter`] are
    /// ever admitted, so every resident key at `finish` has *all* of its
    /// data in memory (the never-split invariant); an evicted or rejected
    /// key's bytes all meet in its `h3` bucket, where `process_bucket`
    /// re-combines them in arrival order.
    fn absorb_miss_lfu(
        &mut self,
        mut t: SimTime,
        sp: StatePair,
        h: u64,
        env: &mut ReduceEnv<'_>,
    ) -> SimTime {
        let sz = sp.key.len() as u64 + self.inc.state_mem_size(&sp.state) + ENTRY_OVERHEAD;
        let clean = !self
            .filter
            .as_ref()
            .expect("LFU policy allocates the filter")
            .contains(h);
        if clean && self.mem_used + sz <= self.mem_budget {
            // Unlike first-come, a clean key may be admitted even after
            // earlier rejections — draining sessions can free memory.
            self.mem_used += sz;
            self.index.insert(h, self.states.len());
            self.states.push((sp.key, sp.state));
            self.counts.push(1);
            t = env.cpu(t, env.cost().hash_time(1));
            self.absorbed += 1;
            self.stats.absorbed += 1;
            env.worked(t, 1);
            return t;
        }
        if clean {
            if let Some(vi) = self.pick_victim(h, sz) {
                return self.evict_and_admit(t, sp, h, vi, env);
            }
        }
        // Rejected arrival: remember the key so it is never admitted
        // later, then spill to its bucket exactly as first-come would.
        self.filter
            .as_mut()
            .expect("LFU policy allocates the filter")
            .insert(h);
        self.stats.rejected += 1;
        self.stats.spill.rejected_arrival += sp.size();
        let b = self.h3.bucket(sp.key.bytes(), self.buckets.num_buckets());
        let op = self.buckets.push(b, sp);
        env.spill(t, op)
    }

    /// Deterministic victim scan: examine up to [`VICTIM_PROBES`] resident
    /// rows starting at the rotating cursor and return the coldest one —
    /// provided the arriving key's sketch estimate strictly exceeds the
    /// victim's and the swap frees enough memory. Pure function of
    /// (resident table, sketch, cursor), all of which are themselves pure
    /// functions of the delivered tuple order.
    fn pick_victim(&mut self, h: u64, incoming_sz: u64) -> Option<usize> {
        let n = self.states.len();
        if n == 0 {
            return None;
        }
        let sketch = self
            .sketch
            .as_ref()
            .expect("LFU policy allocates the sketch");
        let start = (self.victim_cursor % n as u64) as usize;
        self.victim_cursor = self.victim_cursor.wrapping_add(VICTIM_PROBES as u64);
        let mut best: Option<(usize, u32)> = None;
        for probe in 0..VICTIM_PROBES.min(n) {
            let i = (start + probe) % n;
            let est = sketch.estimate(self.h1.hash(self.states[i].0.bytes()));
            if best.is_none_or(|(_, b)| est < b) {
                best = Some((i, est));
            }
        }
        let (vi, vest) = best?;
        if sketch.estimate(h) <= vest {
            return None;
        }
        let (vkey, vstate) = &self.states[vi];
        let vsz = vkey.len() as u64 + self.inc.state_mem_size(vstate) + ENTRY_OVERHEAD;
        (self.mem_used - vsz + incoming_sz <= self.mem_budget).then_some(vi)
    }

    /// Evicts resident row `vi` through the existing spill path and
    /// installs the arriving key in its place. The table stays dense via
    /// `swap_remove` + index `reindex`, keeping row order (and therefore
    /// finalize order, seal order and every downstream byte) a pure
    /// function of the delivered tuple order.
    fn evict_and_admit(
        &mut self,
        mut t: SimTime,
        sp: StatePair,
        h: u64,
        vi: usize,
        env: &mut ReduceEnv<'_>,
    ) -> SimTime {
        let vh = self.h1.hash(self.states[vi].0.bytes());
        let last = self.states.len() - 1;
        self.index.remove(vh, vi);
        let (vkey, vstate) = self.states.swap_remove(vi);
        self.counts.swap_remove(vi);
        if vi < self.states.len() {
            let mh = self.h1.hash(self.states[vi].0.bytes());
            self.index.reindex(mh, last, vi);
        }
        let vsz = vkey.len() as u64 + self.inc.state_mem_size(&vstate) + ENTRY_OVERHEAD;
        self.mem_used = self.mem_used.saturating_sub(vsz);
        // The victim is now a disk key forever: its partial state goes to
        // its h3 bucket first, and every later tuple of the same key will
        // be rejected (filter) into the same bucket, preserving arrival
        // order for order-sensitive combines.
        self.filter
            .as_mut()
            .expect("LFU policy allocates the filter")
            .insert(vh);
        let victim = StatePair::new(vkey, vstate);
        self.stats.admitted_evictions += 1;
        self.stats.spill.admitted_evict += victim.size();
        let b = self
            .h3
            .bucket(victim.key.bytes(), self.buckets.num_buckets());
        let op = self.buckets.push(b, victim);
        t = env.spill(t, op);
        // Install the (hotter) newcomer.
        let sz = sp.key.len() as u64 + self.inc.state_mem_size(&sp.state) + ENTRY_OVERHEAD;
        self.mem_used += sz;
        self.index.insert(h, self.states.len());
        self.states.push((sp.key, sp.state));
        self.counts.push(1);
        t = env.cpu(t, env.cost().hash_time(2));
        self.absorbed += 1;
        self.stats.absorbed += 1;
        env.worked(t, 1);
        t
    }

    /// Processes one staged bucket with a fresh in-memory table,
    /// recursively re-partitioning if even the bucket's distinct keys
    /// exceed memory.
    fn process_bucket(
        &mut self,
        mut t: SimTime,
        tuples: Vec<StatePair>,
        depth: usize,
        env: &mut ReduceEnv<'_>,
    ) -> SimTime {
        // Replay the bucket under its own watermark: the file preserves
        // arrival order, so advancing the watermark from the replayed
        // tuples reproduces the original bounded disorder. Reusing the
        // end-of-stream watermark would defeat the reorder buffering of
        // order-sensitive jobs (sessionization).
        let saved_watermark = self.ctx.watermark;
        self.ctx.watermark = None;
        let mut states: Vec<(Key, Value)> = Vec::new();
        let mut index = ShardedGroupIndex::with_capacity(tuples.len() / 4 + 1);
        let mut used = 0u64;
        let mut overflow: Vec<StatePair> = Vec::new();
        let mut overflow_started = false;
        let mut batch = 0u64;
        for sp in tuples {
            if let Some(ts) = self.inc.event_time(&sp.state) {
                self.ctx.advance_watermark(ts);
            }
            let h = self.h1.hash(sp.key.bytes());
            match index.get(h, |r| states[r].0 == sp.key) {
                Some(i) => {
                    let (ref key, ref mut acc) = states[i];
                    let before = self.inc.state_mem_size(acc);
                    self.inc.cb(key, acc, sp.state, &mut self.ctx);
                    let after = self.inc.state_mem_size(acc);
                    used = adjust(used, before, after);
                    batch += 1;
                }
                None => {
                    let sz =
                        sp.key.len() as u64 + self.inc.state_mem_size(&sp.state) + ENTRY_OVERHEAD;
                    if (!overflow_started && used + sz <= self.mem_budget) || depth >= MAX_DEPTH {
                        used += sz;
                        index.insert(h, states.len());
                        states.push((sp.key, sp.state));
                        batch += 1;
                    } else {
                        overflow_started = true;
                        overflow.push(sp);
                    }
                }
            }
            if batch >= WORK_BATCH {
                t = env.cpu(
                    t,
                    env.cost().hash_time(batch) + env.cost().cb_time(batch / 2),
                );
                env.worked(t, batch);
                batch = 0;
                if self.ctx.pending() > 0 {
                    let out = self.ctx.drain();
                    t = self.sink.push(t, out, env);
                }
            }
        }
        if batch > 0 {
            t = env.cpu(
                t,
                env.cost().hash_time(batch) + env.cost().cb_time(batch / 2),
            );
            env.worked(t, batch);
        }
        // Finalize this bucket's resident keys.
        let resident = states.len() as u64;
        for (key, state) in states {
            self.inc.finalize(&key, state, &mut self.ctx);
        }
        t = env.cpu(t, env.cost().reduce_time(resident));
        let out = self.ctx.drain();
        t = self.sink.push(t, out, env);

        // Overflow keys (key set larger than memory): stage again with the
        // next hash function and recurse.
        if !overflow.is_empty() {
            let h = self.family.fn_at(depth + 1);
            let bytes: u64 = overflow.iter().map(StatePair::size).sum();
            let fan = ((bytes as f64 / (self.mem_budget as f64 * 0.8)).ceil() as usize).max(2);
            let mut sub: BucketManager<StatePair> = BucketManager::new(fan, self.write_buffer);
            for sp in overflow {
                let b = h.bucket(sp.key.bytes(), fan);
                let op = sub.push(b, sp);
                t = env.spill(t, op);
            }
            let op = sub.seal();
            t = env.spill(t, op);
            for b in 0..fan {
                let (recs, op) = sub.take_bucket(b);
                t = env.spill(t, op);
                if !recs.is_empty() {
                    t = self.process_bucket(t, recs, depth + 1, env);
                }
            }
        }
        self.ctx.watermark = match (saved_watermark, self.ctx.watermark) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        t
    }
}

/// Adjusts a memory-usage counter by the signed size change of a state.
fn adjust(used: u64, before: u64, after: u64) -> u64 {
    (used + after).saturating_sub(before)
}

impl ReduceSide for IncHashReducer<'_> {
    fn on_delivery(
        &mut self,
        mut t: SimTime,
        payload: Payload,
        env: &mut ReduceEnv<'_>,
    ) -> SimTime {
        let Payload::States(batch) = payload else {
            unreachable!("INC-hash receives key-state pairs");
        };
        env.shuffled(t, batch.bytes());
        let (tuples, hashes) = batch.into_parts();
        let mut hashes = hashes.into_iter();
        for sp in tuples {
            let h = hashes.next();
            t = self.absorb(t, sp, h, env);
        }
        t
    }

    fn finish(&mut self, mut t: SimTime, env: &mut ReduceEnv<'_>) -> SimTime {
        env.span_open();
        // Finalize every memory-resident key (their data is complete —
        // see the module invariant).
        let states = std::mem::take(&mut self.states);
        self.stats.resident_keys = states.len() as u64;
        self.stats.resident_frequency = self.counts.drain(..).sum();
        self.index.clear();
        self.mem_used = 0;
        let n = states.len() as u64;
        for (key, state) in states {
            self.inc.finalize(&key, state, &mut self.ctx);
        }
        t = env.cpu(t, env.cost().reduce_time(n));
        let out = self.ctx.drain();
        t = self.sink.push(t, out, env);

        // Staged buckets, one at a time.
        let op = self.buckets.seal();
        t = env.spill(t, op);
        for b in 0..self.buckets.num_buckets() {
            let (recs, op) = self.buckets.take_bucket(b);
            t = env.spill(t, op);
            if !recs.is_empty() {
                t = self.process_bucket(t, recs, 3, env);
            }
        }
        t = self.sink.flush(t, env);
        env.span_close(OpKind::Reduce);
        t
    }

    /// Sections: `states` holds the resident table `H` (insertion order —
    /// restore must preserve it, finalize order shapes the output), then
    /// one section per staged bucket; `pairs` holds the pending output
    /// buffer, then any pending context emissions. Numeric sections:
    /// `nums[0] = [absorbed]`, `nums[1]` the admission counters,
    /// `nums[2]` the per-resident combine counts, and — LFU policy only —
    /// `nums[3]`/`nums[4]` the frequency-sketch and spilled-key-filter
    /// images, so a restored reducer makes bit-identical admission
    /// decisions from the checkpoint onward.
    fn export_state(&self) -> Result<ReducerCkpt> {
        let mut states = vec![self
            .states
            .iter()
            .map(|(k, v)| StatePair::new(k.clone(), v.clone()))
            .collect::<Vec<_>>()];
        states.extend(self.buckets.export_contents());
        let mut nums = vec![
            vec![self.absorbed],
            vec![
                self.stats.offered,
                self.stats.absorbed,
                self.stats.admitted_evictions,
                self.stats.rejected,
                self.stats.spill.admitted_evict,
                self.stats.spill.rejected_arrival,
                self.victim_cursor,
            ],
            self.counts.clone(),
        ];
        if let (Some(sketch), Some(filter)) = (&self.sketch, &self.filter) {
            nums.push(sketch.to_nums());
            nums.push(filter.to_nums());
        }
        Ok(ReducerCkpt {
            tag: CKPT_TAG,
            flags: if self.admissions_closed {
                FLAG_ADMISSIONS_CLOSED
            } else {
                0
            },
            watermark: self.ctx.watermark,
            nums,
            pairs: vec![self.sink.export_pending(), self.ctx.export_pending()],
            states,
        })
    }

    fn import_state(&mut self, ckpt: ReducerCkpt) -> Result<()> {
        if ckpt.tag != CKPT_TAG {
            return Err(Error::job(format!(
                "checkpoint tag {} is not INC-hash ({CKPT_TAG})",
                ckpt.tag
            )));
        }
        let mut sections = ckpt.states;
        if sections.len() != self.buckets.num_buckets() + 1 {
            return Err(Error::job(
                "INC-hash checkpoint bucket count mismatch — restore requires \
                 the same cluster spec and sizing hints as the original run",
            ));
        }
        let resident = sections.remove(0);
        let [sink_pending, ctx_pending] = <[Vec<opa_common::Pair>; 2]>::try_from(ckpt.pairs)
            .map_err(|_| Error::job("INC-hash checkpoint missing output sections"))?;
        self.states = Vec::with_capacity(resident.len());
        self.index = ShardedGroupIndex::with_capacity(resident.len());
        self.mem_used = 0;
        for sp in resident {
            self.mem_used +=
                sp.key.len() as u64 + self.inc.state_mem_size(&sp.state) + ENTRY_OVERHEAD;
            self.index
                .insert(self.h1.hash(sp.key.bytes()), self.states.len());
            self.states.push((sp.key, sp.state));
        }
        self.buckets.restore_contents(sections);
        self.sink.restore_pending(sink_pending);
        self.ctx.restore_pending(ctx_pending);
        self.ctx.watermark = ckpt.watermark;
        let mut nums = ckpt.nums.into_iter();
        self.absorbed = nums.next().and_then(|n| n.first().copied()).unwrap_or(0);
        if let Some(counters) = nums.next() {
            let [offered, absorbed, evictions, rejected, sp_evict, sp_rej, cursor] =
                <[u64; 7]>::try_from(counters).map_err(|_| {
                    Error::job("INC-hash checkpoint admission-counter section malformed")
                })?;
            self.stats.offered = offered;
            self.stats.absorbed = absorbed;
            self.stats.admitted_evictions = evictions;
            self.stats.rejected = rejected;
            self.stats.spill.admitted_evict = sp_evict;
            self.stats.spill.rejected_arrival = sp_rej;
            self.victim_cursor = cursor;
        }
        let counts = nums.next().unwrap_or_default();
        if counts.len() != self.states.len() {
            return Err(Error::job(
                "INC-hash checkpoint combine-count section disagrees with the resident table",
            ));
        }
        self.counts = counts;
        if self.admission.is_on() {
            let (Some(sketch), Some(filter)) = (nums.next(), nums.next()) else {
                return Err(Error::job(
                    "INC-hash checkpoint lacks admission sketch sections — it was \
                     written with a different --admission setting",
                ));
            };
            self.sketch = Some(FreqSketch::from_nums(&sketch)?);
            self.filter = Some(KeyFilter::from_nums(&filter)?);
        }
        self.admissions_closed = ckpt.flags & FLAG_ADMISSIONS_CLOSED != 0;
        Ok(())
    }

    fn query(&self, key: &Key) -> Option<Value> {
        let h = self.h1.hash(key.bytes());
        self.index
            .get(h, |r| self.states[r].0 == *key)
            .map(|i| self.states[i].1.clone())
    }

    /// Populated for both policies — the off-policy numbers are what the
    /// admission tests compare an LFU run against (γ, resident
    /// frequency); the eviction fields stay zero when the policy is off.
    fn admission_stats(&self) -> Option<AdmissionStats> {
        Some(self.stats)
    }

    fn watermark(&self) -> Option<u64> {
        self.ctx.watermark
    }
}
