//! INC-hash: the incremental hash technique (§4.2).
//!
//! The reducer keeps an in-memory table `H` from key to the state of the
//! computation. A tuple whose key is in `H` is collapsed immediately with
//! `cb()` — no I/O, ever, and any early output (a closed session, a counter
//! crossing a threshold) flows straight to HDFS, which is why INC-hash
//! reduce progress can track map progress. A tuple whose key is absent is
//! admitted while memory lasts and staged to an `h3` bucket afterwards;
//! staged buckets are processed one at a time after the input ends.
//!
//! Key invariant (and the reason INC-hash output is exact even for
//! order-sensitive jobs like sessionization): a key is either resident in
//! `H` from its first appearance, or *all* of its tuples go to the same
//! bucket — a key's data is never split between memory and disk.

use super::{OutputSink, ReduceEnv, ReduceSide, ReducerCkpt, ReducerSizing, WORK_BATCH};
use crate::api::{IncrementalReducer, Job, ReduceCtx};
use crate::cluster::ClusterSpec;
use crate::map_phase::Payload;
use crate::sim::OpKind;
use opa_common::units::SimTime;
use opa_common::{Error, HashFamily, HashFn, Key, Result, ShardedGroupIndex, StatePair, Value};
use opa_simio::BucketManager;

/// [`ReducerCkpt::tag`] of the INC-hash framework.
pub(crate) const CKPT_TAG: u8 = 3;

/// [`ReducerCkpt::flags`] bit: admissions were closed by a memory overflow.
const FLAG_ADMISSIONS_CLOSED: u64 = 1;

/// Per-entry bookkeeping overhead charged against the memory budget
/// (hash-table slot, indices), mirroring the byte-array memory managers of
/// the prototype (§5).
const ENTRY_OVERHEAD: u64 = 16;

/// Recursion ceiling for pathological bucket skew.
const MAX_DEPTH: usize = 6;

/// One reduce task running the INC-hash framework.
pub struct IncHashReducer<'j> {
    inc: &'j dyn IncrementalReducer,
    family: HashFamily,
    /// Partitioning function — its fingerprints arrive cached in every
    /// delivered batch and double as the table-probe hash.
    h1: HashFn,
    h3: HashFn,
    /// Insertion-ordered key→state table (`H`).
    states: Vec<(Key, Value)>,
    index: ShardedGroupIndex,
    mem_used: u64,
    mem_budget: u64,
    write_buffer: u64,
    buckets: BucketManager<StatePair>,
    ctx: ReduceCtx,
    sink: OutputSink,
    /// Tuples absorbed in memory during the streaming phase.
    absorbed: u64,
    /// Set on the first rejection: no further keys are admitted even if
    /// draining states later frees memory. A key admitted after one of its
    /// tuples spilled would be split between memory and disk, breaking the
    /// module invariant ("the keys chosen for in-memory processing are
    /// just the first keys observed" — paper §4.3).
    admissions_closed: bool,
}

impl<'j> IncHashReducer<'j> {
    /// Creates the reducer; the bucket fan-out follows the paper's
    /// `h = K·n_p/B` sizing so each staged bucket's keys fit in memory.
    pub fn new(
        job: &'j dyn Job,
        spec: &ClusterSpec,
        sizing: ReducerSizing,
        family: &HashFamily,
    ) -> Self {
        let inc = job.incremental().expect("checked by make_reducer");
        let mem = spec.hardware.reduce_buffer;
        let write_buffer = spec.bucket_write_buffer;
        let h = sizing.bucket_count(mem, write_buffer);
        let mem_budget = mem.saturating_sub(h as u64 * write_buffer).max(1);
        IncHashReducer {
            inc,
            family: family.clone(),
            h1: family.fn_at(0),
            h3: family.fn_at(2),
            states: Vec::new(),
            index: ShardedGroupIndex::default(),
            mem_used: 0,
            mem_budget,
            write_buffer,
            buckets: BucketManager::new(h, write_buffer),
            ctx: ReduceCtx::new(),
            sink: OutputSink::new(),
            absorbed: 0,
            admissions_closed: false,
        }
    }

    /// Streams one tuple through the table, probing with the batch-carried
    /// `h1` fingerprint when the shuffle delivered one (re-hashing only
    /// for restored tuples whose cache was dropped). Returns the advanced
    /// clock.
    fn absorb(
        &mut self,
        mut t: SimTime,
        sp: StatePair,
        hash: Option<u64>,
        env: &mut ReduceEnv<'_>,
    ) -> SimTime {
        if let Some(ts) = self.inc.event_time(&sp.state) {
            self.ctx.advance_watermark(ts);
        }
        let h = hash.unwrap_or_else(|| self.h1.hash(sp.key.bytes()));
        match self.index.get(h, |r| self.states[r].0 == sp.key) {
            Some(i) => {
                let (ref key, ref mut acc) = self.states[i];
                let before = self.inc.state_mem_size(acc);
                self.inc.cb(key, acc, sp.state, &mut self.ctx);
                let after = self.inc.state_mem_size(acc);
                self.mem_used = adjust(self.mem_used, before, after);
                t = env.cpu(t, env.cost().cb_time(1) + env.cost().hash_time(1));
                self.absorbed += 1;
                env.worked(t, 1);
                if self.ctx.pending() > 0 {
                    let out = self.ctx.drain();
                    t = self.sink.push(t, out, env);
                }
            }
            None => {
                let sz = sp.key.len() as u64 + self.inc.state_mem_size(&sp.state) + ENTRY_OVERHEAD;
                if !self.admissions_closed && self.mem_used + sz <= self.mem_budget {
                    self.mem_used += sz;
                    self.index.insert(h, self.states.len());
                    self.states.push((sp.key, sp.state));
                    t = env.cpu(t, env.cost().hash_time(1));
                    self.absorbed += 1;
                    env.worked(t, 1);
                } else {
                    self.admissions_closed = true;
                    let b = self.h3.bucket(sp.key.bytes(), self.buckets.num_buckets());
                    let op = self.buckets.push(b, sp);
                    t = env.spill(t, op);
                }
            }
        }
        t
    }

    /// Processes one staged bucket with a fresh in-memory table,
    /// recursively re-partitioning if even the bucket's distinct keys
    /// exceed memory.
    fn process_bucket(
        &mut self,
        mut t: SimTime,
        tuples: Vec<StatePair>,
        depth: usize,
        env: &mut ReduceEnv<'_>,
    ) -> SimTime {
        // Replay the bucket under its own watermark: the file preserves
        // arrival order, so advancing the watermark from the replayed
        // tuples reproduces the original bounded disorder. Reusing the
        // end-of-stream watermark would defeat the reorder buffering of
        // order-sensitive jobs (sessionization).
        let saved_watermark = self.ctx.watermark;
        self.ctx.watermark = None;
        let mut states: Vec<(Key, Value)> = Vec::new();
        let mut index = ShardedGroupIndex::with_capacity(tuples.len() / 4 + 1);
        let mut used = 0u64;
        let mut overflow: Vec<StatePair> = Vec::new();
        let mut overflow_started = false;
        let mut batch = 0u64;
        for sp in tuples {
            if let Some(ts) = self.inc.event_time(&sp.state) {
                self.ctx.advance_watermark(ts);
            }
            let h = self.h1.hash(sp.key.bytes());
            match index.get(h, |r| states[r].0 == sp.key) {
                Some(i) => {
                    let (ref key, ref mut acc) = states[i];
                    let before = self.inc.state_mem_size(acc);
                    self.inc.cb(key, acc, sp.state, &mut self.ctx);
                    let after = self.inc.state_mem_size(acc);
                    used = adjust(used, before, after);
                    batch += 1;
                }
                None => {
                    let sz =
                        sp.key.len() as u64 + self.inc.state_mem_size(&sp.state) + ENTRY_OVERHEAD;
                    if (!overflow_started && used + sz <= self.mem_budget) || depth >= MAX_DEPTH {
                        used += sz;
                        index.insert(h, states.len());
                        states.push((sp.key, sp.state));
                        batch += 1;
                    } else {
                        overflow_started = true;
                        overflow.push(sp);
                    }
                }
            }
            if batch >= WORK_BATCH {
                t = env.cpu(
                    t,
                    env.cost().hash_time(batch) + env.cost().cb_time(batch / 2),
                );
                env.worked(t, batch);
                batch = 0;
                if self.ctx.pending() > 0 {
                    let out = self.ctx.drain();
                    t = self.sink.push(t, out, env);
                }
            }
        }
        if batch > 0 {
            t = env.cpu(
                t,
                env.cost().hash_time(batch) + env.cost().cb_time(batch / 2),
            );
            env.worked(t, batch);
        }
        // Finalize this bucket's resident keys.
        let resident = states.len() as u64;
        for (key, state) in states {
            self.inc.finalize(&key, state, &mut self.ctx);
        }
        t = env.cpu(t, env.cost().reduce_time(resident));
        let out = self.ctx.drain();
        t = self.sink.push(t, out, env);

        // Overflow keys (key set larger than memory): stage again with the
        // next hash function and recurse.
        if !overflow.is_empty() {
            let h = self.family.fn_at(depth + 1);
            let bytes: u64 = overflow.iter().map(StatePair::size).sum();
            let fan = ((bytes as f64 / (self.mem_budget as f64 * 0.8)).ceil() as usize).max(2);
            let mut sub: BucketManager<StatePair> = BucketManager::new(fan, self.write_buffer);
            for sp in overflow {
                let b = h.bucket(sp.key.bytes(), fan);
                let op = sub.push(b, sp);
                t = env.spill(t, op);
            }
            let op = sub.seal();
            t = env.spill(t, op);
            for b in 0..fan {
                let (recs, op) = sub.take_bucket(b);
                t = env.spill(t, op);
                if !recs.is_empty() {
                    t = self.process_bucket(t, recs, depth + 1, env);
                }
            }
        }
        self.ctx.watermark = match (saved_watermark, self.ctx.watermark) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        t
    }
}

/// Adjusts a memory-usage counter by the signed size change of a state.
fn adjust(used: u64, before: u64, after: u64) -> u64 {
    (used + after).saturating_sub(before)
}

impl ReduceSide for IncHashReducer<'_> {
    fn on_delivery(
        &mut self,
        mut t: SimTime,
        payload: Payload,
        env: &mut ReduceEnv<'_>,
    ) -> SimTime {
        let Payload::States(batch) = payload else {
            unreachable!("INC-hash receives key-state pairs");
        };
        env.shuffled(t, batch.bytes());
        let (tuples, hashes) = batch.into_parts();
        let mut hashes = hashes.into_iter();
        for sp in tuples {
            let h = hashes.next();
            t = self.absorb(t, sp, h, env);
        }
        t
    }

    fn finish(&mut self, mut t: SimTime, env: &mut ReduceEnv<'_>) -> SimTime {
        env.span_open();
        // Finalize every memory-resident key (their data is complete —
        // see the module invariant).
        let states = std::mem::take(&mut self.states);
        self.index.clear();
        self.mem_used = 0;
        let n = states.len() as u64;
        for (key, state) in states {
            self.inc.finalize(&key, state, &mut self.ctx);
        }
        t = env.cpu(t, env.cost().reduce_time(n));
        let out = self.ctx.drain();
        t = self.sink.push(t, out, env);

        // Staged buckets, one at a time.
        let op = self.buckets.seal();
        t = env.spill(t, op);
        for b in 0..self.buckets.num_buckets() {
            let (recs, op) = self.buckets.take_bucket(b);
            t = env.spill(t, op);
            if !recs.is_empty() {
                t = self.process_bucket(t, recs, 3, env);
            }
        }
        t = self.sink.flush(t, env);
        env.span_close(OpKind::Reduce);
        t
    }

    /// Sections: `states` holds the resident table `H` (insertion order —
    /// restore must preserve it, finalize order shapes the output), then
    /// one section per staged bucket; `pairs` holds the pending output
    /// buffer, then any pending context emissions; `nums[0] = [absorbed]`.
    fn export_state(&self) -> Result<ReducerCkpt> {
        let mut states = vec![self
            .states
            .iter()
            .map(|(k, v)| StatePair::new(k.clone(), v.clone()))
            .collect::<Vec<_>>()];
        states.extend(self.buckets.export_contents());
        Ok(ReducerCkpt {
            tag: CKPT_TAG,
            flags: if self.admissions_closed {
                FLAG_ADMISSIONS_CLOSED
            } else {
                0
            },
            watermark: self.ctx.watermark,
            nums: vec![vec![self.absorbed]],
            pairs: vec![self.sink.export_pending(), self.ctx.export_pending()],
            states,
        })
    }

    fn import_state(&mut self, ckpt: ReducerCkpt) -> Result<()> {
        if ckpt.tag != CKPT_TAG {
            return Err(Error::job(format!(
                "checkpoint tag {} is not INC-hash ({CKPT_TAG})",
                ckpt.tag
            )));
        }
        let mut sections = ckpt.states;
        if sections.len() != self.buckets.num_buckets() + 1 {
            return Err(Error::job(
                "INC-hash checkpoint bucket count mismatch — restore requires \
                 the same cluster spec and sizing hints as the original run",
            ));
        }
        let resident = sections.remove(0);
        let [sink_pending, ctx_pending] = <[Vec<opa_common::Pair>; 2]>::try_from(ckpt.pairs)
            .map_err(|_| Error::job("INC-hash checkpoint missing output sections"))?;
        self.states = Vec::with_capacity(resident.len());
        self.index = ShardedGroupIndex::with_capacity(resident.len());
        self.mem_used = 0;
        for sp in resident {
            self.mem_used +=
                sp.key.len() as u64 + self.inc.state_mem_size(&sp.state) + ENTRY_OVERHEAD;
            self.index
                .insert(self.h1.hash(sp.key.bytes()), self.states.len());
            self.states.push((sp.key, sp.state));
        }
        self.buckets.restore_contents(sections);
        self.sink.restore_pending(sink_pending);
        self.ctx.restore_pending(ctx_pending);
        self.ctx.watermark = ckpt.watermark;
        self.absorbed = ckpt
            .nums
            .first()
            .and_then(|n| n.first())
            .copied()
            .unwrap_or(0);
        self.admissions_closed = ckpt.flags & FLAG_ADMISSIONS_CLOSED != 0;
        Ok(())
    }

    fn query(&self, key: &Key) -> Option<Value> {
        let h = self.h1.hash(key.bytes());
        self.index
            .get(h, |r| self.states[r].0 == *key)
            .map(|i| self.states[i].1.clone())
    }

    fn watermark(&self) -> Option<u64> {
        self.ctx.watermark
    }
}
