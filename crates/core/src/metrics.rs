//! Per-job metrics: the rows of the paper's Tables 1, 3 and 4.

use opa_common::units::{ByteSize, SimDuration, SimTime};
use opa_simio::{IoStats, SpillSplit};
use serde::{Deserialize, Serialize};
use std::fmt;

/// DINC-hash monitor statistics, aggregated over all reducers. `None`
/// for other frameworks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DincStats {
    /// Monitor slot capacity `s` per reducer.
    pub slots_per_reducer: u64,
    /// Total tuples offered to monitors (`M`).
    pub offered: u64,
    /// Tuples rejected (staged to disk with counters decremented).
    pub rejected: u64,
    /// Evictions resolved by direct output (the §6.2 fast path).
    pub evict_output: u64,
    /// Evictions that spilled their state to a bucket.
    pub evict_spilled: u64,
}

/// Frequency-gated admission statistics, aggregated over all reducers.
/// Present in [`JobMetrics`] for the incremental frameworks under either
/// policy (the eviction fields stay zero with admission off, so a test
/// can compare measured γ and spill attribution across policies); `None`
/// for the sort-merge/MR-hash frameworks, which keep no resident state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdmissionStats {
    /// Tuples offered to reduce-side tables.
    pub offered: u64,
    /// Tuples absorbed into resident in-memory state (combined or
    /// installed without spilling).
    pub absorbed: u64,
    /// Evict-and-admit decisions: a resident cold key's state was spilled
    /// to make room for a hotter arrival.
    pub admitted_evictions: u64,
    /// Arrivals denied admission and spilled to their hash bucket.
    pub rejected: u64,
    /// Byte attribution of the reduce-spill (`U_4`) writes.
    pub spill: SpillSplit,
    /// Keys resident in memory when the reducers finished.
    pub resident_keys: u64,
    /// Total tuples absorbed into the keys that were still resident at
    /// finish — the "resident set's total frequency" a better-than-
    /// first-come policy is supposed to maximize at fixed memory.
    pub resident_frequency: u64,
}

impl AdmissionStats {
    /// Measured coverage γ: the fraction of offered tuples absorbed into
    /// memory. This is the empirical counterpart of the paper's
    /// first-come lower bound `t/(t + M/(s+1))` (§4.3) — the quantity the
    /// admission policy exists to raise.
    pub fn gamma_measured(&self) -> f64 {
        if self.offered == 0 {
            return 1.0;
        }
        self.absorbed as f64 / self.offered as f64
    }

    /// Merges per-reducer stats into a job-wide aggregate.
    pub fn merge(&mut self, other: &AdmissionStats) {
        self.offered += other.offered;
        self.absorbed += other.absorbed;
        self.admitted_evictions += other.admitted_evictions;
        self.rejected += other.rejected;
        self.spill.merge(&other.spill);
        self.resident_keys += other.resident_keys;
        self.resident_frequency += other.resident_frequency;
    }
}

/// In-node combining statistics, aggregated over all nodes. Present in
/// [`JobMetrics`] only when the job ran under `CombineScope::Node` with a
/// combiner (or `init/cb` for the incremental frameworks) to merge with.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeCombineStats {
    /// Pre-combine bytes offered to the node staging tables (what the
    /// shuffle would have carried without node-level combining).
    pub staged_bytes: u64,
    /// Post-combine bytes the flushes actually shipped.
    pub flushed_bytes: u64,
    /// Staging-table flushes (budget-triggered plus per-node finals).
    pub flushes: u64,
    /// Cross-task merges: staged rows folded into an already-resident row.
    pub merged_rows: u64,
}

impl NodeCombineStats {
    /// Combine ratio: shipped bytes over offered bytes (1.0 when nothing
    /// was offered — an empty stage compresses nothing).
    pub fn ratio(&self) -> f64 {
        if self.staged_bytes == 0 {
            return 1.0;
        }
        self.flushed_bytes as f64 / self.staged_bytes as f64
    }
}

/// Everything the paper reports about one job run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobMetrics {
    /// Framework label ("SM", "MR-hash", …).
    pub framework: String,
    /// Job name.
    pub job: String,
    /// Total running time (virtual).
    pub running_time: SimTime,
    /// When the last map task finished.
    pub map_finish: SimTime,
    /// Job input bytes (`D`).
    pub input_bytes: u64,
    /// Total map output = shuffle volume ("Map output / Shuffle" rows).
    pub map_output_bytes: u64,
    /// Map-side internal spill bytes written (external sort).
    pub map_spill_bytes: u64,
    /// Reduce-side internal spill bytes written ("Reduce spill" rows).
    pub reduce_spill_bytes: u64,
    /// Job output bytes.
    pub output_bytes: u64,
    /// Snapshot output bytes (MapReduce Online's periodic outputs; zero
    /// unless snapshots were requested).
    pub snapshot_bytes: u64,
    /// Output record count.
    pub output_records: u64,
    /// CPU time consumed by map tasks, averaged per node ("Map CPU time
    /// per node").
    pub map_cpu_per_node: SimDuration,
    /// CPU time consumed by reduce tasks, averaged per node.
    pub reduce_cpu_per_node: SimDuration,
    /// Five-category I/O statistics (cluster-wide), covering everything
    /// the simulated devices served — including I/O re-done while
    /// recovering from injected faults.
    pub io: IoStats,
    /// The recovery-only share of [`JobMetrics::io`]: bytes and requests
    /// re-done by reduce-task re-replays after injected crashes. Always
    /// zero without fault injection. See [`JobMetrics::io_first_pass`].
    pub io_recovery: IoStats,
    /// DINC monitor statistics (only for `Framework::DincHash`).
    pub dinc: Option<DincStats>,
    /// Frequency-gated admission statistics (only when the LFU admission
    /// policy was enabled).
    pub admission: Option<AdmissionStats>,
    /// Fault-injection report: retries, wasted work, recovery time and the
    /// full failure trace. `None` when fault injection was disabled.
    pub faults: Option<opa_common::fault::FaultReport>,
    /// Bytes actually booked on the simulated network during the shuffle.
    /// Equals the post-task-combine map output volume under off/task
    /// scopes and the post-*node*-combine volume under node scope; the
    /// quantity the model's combiner-ratio term predicts.
    pub shuffle_bytes: u64,
    /// In-node combining statistics (only under `CombineScope::Node` with
    /// something to merge with).
    pub node_combine: Option<NodeCombineStats>,
}

impl JobMetrics {
    /// Reduce-spill reduction factor relative to another run — the paper's
    /// "3 orders of magnitude" headline is
    /// `sm.spill_reduction_vs(&dinc) ≈ 1000`.
    pub fn spill_reduction_vs(&self, other: &JobMetrics) -> f64 {
        if self.reduce_spill_bytes == 0 {
            return f64::INFINITY;
        }
        other.reduce_spill_bytes as f64 / self.reduce_spill_bytes as f64
    }

    /// Fault-free first-pass I/O: [`JobMetrics::io`] with the recovery
    /// re-replay traffic stripped back out. This is the quantity the §3
    /// model (Props. 3.1/3.2) predicts and the one the drift checker
    /// treats as authoritative — under fault injection, `io` alone
    /// double-counts recovered reduce-task work relative to the
    /// `reduce_spill_bytes`/`output_bytes` rows, which only ever count
    /// first-pass bytes (pinned in `tests/fault_recovery_semantics.rs`).
    pub fn io_first_pass(&self) -> IoStats {
        self.io.minus(&self.io_recovery)
    }
}

impl fmt::Display for JobMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} / {}", self.job, self.framework)?;
        writeln!(f, "  running time        {}", self.running_time)?;
        writeln!(f, "  map finish          {}", self.map_finish)?;
        writeln!(f, "  input               {}", ByteSize(self.input_bytes))?;
        writeln!(
            f,
            "  map output/shuffle  {}",
            ByteSize(self.map_output_bytes)
        )?;
        writeln!(
            f,
            "  map spill           {}",
            ByteSize(self.map_spill_bytes)
        )?;
        writeln!(
            f,
            "  reduce spill        {}",
            ByteSize(self.reduce_spill_bytes)
        )?;
        writeln!(
            f,
            "  output              {} ({} records)",
            ByteSize(self.output_bytes),
            self.output_records
        )?;
        writeln!(f, "  map CPU / node      {}", self.map_cpu_per_node)?;
        write!(f, "  reduce CPU / node   {}", self.reduce_cpu_per_node)?;
        if let Some(nc) = &self.node_combine {
            write!(
                f,
                "\n  node combine        {} staged -> {} shipped (ratio {:.3}, {} flushes, {} merges)",
                ByteSize(nc.staged_bytes),
                ByteSize(nc.flushed_bytes),
                nc.ratio(),
                nc.flushes,
                nc.merged_rows
            )?;
        }
        if let Some(rep) = &self.faults {
            write!(
                f,
                "\n  faults              {} fired / {} retries / {} wasted bytes / {} recovery",
                rep.trace.len(),
                rep.total_retries(),
                rep.wasted_bytes,
                rep.recovery_time
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(spill: u64) -> JobMetrics {
        JobMetrics {
            framework: "SM".into(),
            job: "sessionization".into(),
            running_time: SimTime::from_secs_f64(4860.0),
            map_finish: SimTime::from_secs_f64(2070.0),
            input_bytes: 256 << 20,
            map_output_bytes: 269 << 20,
            map_spill_bytes: 0,
            reduce_spill_bytes: spill,
            output_bytes: 256 << 20,
            snapshot_bytes: 0,
            output_records: 1000,
            map_cpu_per_node: SimDuration::from_secs_f64(936.0),
            reduce_cpu_per_node: SimDuration::from_secs_f64(1104.0),
            io: IoStats::new(),
            io_recovery: IoStats::new(),
            dinc: None,
            admission: None,
            faults: None,
            shuffle_bytes: 269 << 20,
            node_combine: None,
        }
    }

    #[test]
    fn node_combine_ratio() {
        let nc = NodeCombineStats {
            staged_bytes: 1000,
            flushed_bytes: 250,
            flushes: 3,
            merged_rows: 42,
        };
        assert!((nc.ratio() - 0.25).abs() < 1e-12);
        assert_eq!(NodeCombineStats::default().ratio(), 1.0);
    }

    #[test]
    fn spill_reduction_factor() {
        let dinc = sample(100 << 10); // 0.1 MB-scale
        let sm = sample(370 << 20); // 370 MB-scale
        let factor = dinc.spill_reduction_vs(&sm);
        assert!(factor > 3000.0, "{factor}");
        let zero = sample(0);
        assert!(zero.spill_reduction_vs(&sm).is_infinite());
    }

    #[test]
    fn display_contains_key_rows() {
        let s = sample(1).to_string();
        for needle in [
            "running time",
            "map output/shuffle",
            "reduce spill",
            "map CPU / node",
        ] {
            assert!(s.contains(needle), "missing {needle}");
        }
    }
}
