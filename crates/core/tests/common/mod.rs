//! Shared fixtures for the fault-injection test harness: a count-style
//! job whose *output multiset* is delivery-order independent under every
//! framework (emissions happen only at finish; `cb` is commutative and
//! associative), plus a seeded skewed input generator. Fault-induced
//! timing shifts may reorder deliveries, so order-independence is exactly
//! the property that makes "output bit-identical to the fault-free run"
//! (after canonical sorting) a fair assertion.

use opa_common::rng::SplitMix64;
use opa_common::{Key, Value};
use opa_core::api::{Combiner, IncrementalReducer, Job, ReduceCtx};
use opa_core::cluster::ClusterSpec;
use opa_core::job::JobInput;

/// Word-count with a combiner and an incremental reducer, so every
/// framework (sort-merge, hash, INC, DINC) has its natural path.
pub struct WordCount;

impl Job for WordCount {
    fn name(&self) -> &str {
        "word-count"
    }
    fn map(&self, record: &[u8], emit: &mut dyn FnMut(&[u8], &[u8])) {
        for word in record.split(|&b| b == b' ').filter(|w| !w.is_empty()) {
            emit(word, &1u64.to_be_bytes());
        }
    }
    fn reduce(&self, key: &Key, values: Vec<Value>, ctx: &mut ReduceCtx) {
        let sum: u64 = values.iter().filter_map(Value::as_u64).sum();
        ctx.emit(key.clone(), Value::from_u64(sum));
    }
    fn combiner(&self) -> Option<&dyn Combiner> {
        Some(self)
    }
    fn incremental(&self) -> Option<&dyn IncrementalReducer> {
        Some(self)
    }
    fn expected_keys(&self) -> Option<u64> {
        Some(400)
    }
}

impl Combiner for WordCount {
    fn combine(&self, _key: &Key, values: Vec<Value>) -> Vec<Value> {
        vec![Value::from_u64(
            values.iter().filter_map(Value::as_u64).sum(),
        )]
    }
}

impl IncrementalReducer for WordCount {
    fn init(&self, _key: &Key, value: Value) -> Value {
        value
    }
    fn cb(&self, _key: &Key, acc: &mut Value, other: Value, _ctx: &mut ReduceCtx) {
        *acc = Value::from_u64(acc.as_u64().unwrap_or(0) + other.as_u64().unwrap_or(0));
    }
    fn finalize(&self, key: &Key, state: Value, ctx: &mut ReduceCtx) {
        ctx.emit(key.clone(), state);
    }
}

/// A seeded input with a skewed key distribution — enough records for
/// several chunks per node and plenty of shuffle traffic.
pub fn seeded_input(seed: u64, records: usize) -> JobInput {
    let mut rng = SplitMix64::new(seed);
    let recs: Vec<Vec<u8>> = (0..records)
        .map(|_| {
            let words = 3 + rng.next_below(5) as usize;
            let mut line = Vec::new();
            for w in 0..words {
                if w > 0 {
                    line.push(b' ');
                }
                let id = if rng.next_below(4) == 0 {
                    rng.next_below(8)
                } else {
                    8 + rng.next_below(300)
                };
                line.extend_from_slice(format!("w{id}").as_bytes());
            }
            line
        })
        .collect();
    JobInput::from_records(recs)
}

/// Paper cluster with a small chunk size → many map tasks, many targets
/// for the fault plan.
pub fn spec() -> ClusterSpec {
    let mut spec = ClusterSpec::paper_scaled();
    spec.system.chunk_size = 2048;
    spec
}
