//! Edge cases around snapshot scheduling and DINC early stop: degenerate
//! configurations must either be rejected up front or behave exactly like
//! their well-formed equivalents — never panic, never drop output.

mod common;

use common::{seeded_input, spec, WordCount};
use opa_core::cluster::Framework;
use opa_core::job::{JobBuilder, JobInput, JobOutcome};

fn run_snapshots(points: &[f64], input: &JobInput) -> JobOutcome {
    JobBuilder::new(WordCount)
        .framework(Framework::SortMergePipelined)
        .cluster(spec())
        .snapshot_points(points)
        .run(input)
        .expect("job runs")
}

#[test]
fn empty_snapshot_points_equal_no_snapshots() {
    let input = seeded_input(0xED01, 600);
    let explicit = run_snapshots(&[], &input);
    let default = JobBuilder::new(WordCount)
        .framework(Framework::SortMergePipelined)
        .cluster(spec())
        .run(&input)
        .expect("job runs");
    assert_eq!(explicit.metrics.snapshot_bytes, 0);
    assert_eq!(format!("{explicit:?}"), format!("{default:?}"));
}

#[test]
fn duplicate_snapshot_points_do_not_drop_output() {
    let input = seeded_input(0xED02, 600);
    let plain = run_snapshots(&[], &input);
    let single = run_snapshots(&[0.5], &input);
    let dup = run_snapshots(&[0.5, 0.5], &input);
    // Snapshots are extra output, never a replacement: the final answer
    // is unchanged whether the point fires once, twice, or not at all.
    assert_eq!(single.sorted_output(), plain.sorted_output());
    assert_eq!(dup.sorted_output(), plain.sorted_output());
    // And a duplicated point can only add snapshot work, not lose it.
    assert!(dup.metrics.snapshot_bytes >= single.metrics.snapshot_bytes);
    assert!(single.metrics.snapshot_bytes > 0);
}

#[test]
fn boundary_snapshot_fractions_complete() {
    let input = seeded_input(0xED03, 600);
    let plain = run_snapshots(&[], &input);
    // 0.0 fires before any map output exists; 1.0 coincides with the
    // final merge. Both are legal fractions and must not panic.
    let out = run_snapshots(&[0.0, 1.0], &input);
    assert_eq!(out.sorted_output(), plain.sorted_output());
}

#[test]
fn invalid_snapshot_points_are_rejected() {
    let input = seeded_input(0xED04, 200);
    for bad in [1.5, -0.25, f64::NAN, f64::INFINITY] {
        let res = JobBuilder::new(WordCount)
            .framework(Framework::SortMergePipelined)
            .cluster(spec())
            .snapshot_points(&[0.5, bad])
            .run(&input);
        assert!(res.is_err(), "snapshot point {bad} should be rejected");
    }
}

#[test]
fn phi_one_early_stop_matches_exact_dinc() {
    // φ = 1.0 demands full coverage — i.e. no early answer at all. It
    // must degrade to the exact DINC run, not emit an empty result.
    let input = seeded_input(0xED05, 800);
    let exact = JobBuilder::new(WordCount)
        .framework(Framework::DincHash)
        .cluster(spec())
        .run(&input)
        .expect("job runs");
    let full_phi = JobBuilder::new(WordCount)
        .framework(Framework::DincHash)
        .cluster(spec())
        .early_stop_coverage(1.0)
        .run(&input)
        .expect("job runs");
    assert!(!full_phi.output.is_empty(), "φ=1.0 dropped all output");
    assert_eq!(full_phi.sorted_output(), exact.sorted_output());
}

#[test]
fn invalid_phi_is_rejected() {
    let input = seeded_input(0xED06, 200);
    for bad in [0.0, -0.5, 1.5, f64::NAN, f64::INFINITY] {
        let res = JobBuilder::new(WordCount)
            .framework(Framework::DincHash)
            .cluster(spec())
            .early_stop_coverage(bad)
            .run(&input);
        assert!(res.is_err(), "φ={bad} should be rejected");
    }
}

#[test]
fn small_phi_still_produces_output() {
    // An aggressive early stop may answer from partial coverage, but it
    // must still terminate and emit a nonempty result.
    let input = seeded_input(0xED07, 800);
    let out = JobBuilder::new(WordCount)
        .framework(Framework::DincHash)
        .cluster(spec())
        .early_stop_coverage(0.05)
        .run(&input)
        .expect("job runs");
    assert!(!out.output.is_empty());
}
