//! The frequency-gated admission battery (§4.2/§4.3 + TinyLFU gate):
//!
//! 1. **Off is free.** With the policy off, the engine is bit-identical
//!    to a build that never mentions admission — the flag is pure opt-in.
//! 2. **Decisions are deterministic.** Admission decisions are pure
//!    functions of (seed, key, arrival index), so the full `JobOutcome`
//!    is bit-identical across execution thread counts with the policy on.
//! 3. **The gate earns its memory.** At fixed reduce memory under Zipf
//!    skew, the LFU-admitted resident set's total frequency dominates
//!    first-come's, measured coverage γ beats both the first-come engine
//!    and the paper's `t/(t + M/(s+1))` bound, and reduce-spill (`U_4`)
//!    bytes drop.
//! 4. **The books balance.** Every offered tuple is either absorbed or
//!    rejected, and the `U_4` attribution split never exceeds the
//!    measured spill volume.

use opa_common::rng::SplitMix64;
use opa_common::{AdmissionPolicy, ExecConfig, Key, Value};
use opa_core::api::{Combiner, IncrementalReducer, Job, ReduceCtx};
use opa_core::cluster::{ClusterSpec, Framework};
use opa_core::job::{JobBuilder, JobInput, JobOutcome};
use opa_core::metrics::AdmissionStats;

/// Count-per-key job: one key token per record, commutative/associative
/// combine — the natural INC/DINC workload shape.
struct ZipfCount {
    expected: u64,
}

impl Job for ZipfCount {
    fn name(&self) -> &str {
        "zipf-count"
    }
    fn map(&self, record: &[u8], emit: &mut dyn FnMut(&[u8], &[u8])) {
        if !record.is_empty() {
            emit(record, &1u64.to_be_bytes());
        }
    }
    fn reduce(&self, key: &Key, values: Vec<Value>, ctx: &mut ReduceCtx) {
        let sum: u64 = values.iter().filter_map(Value::as_u64).sum();
        ctx.emit(key.clone(), Value::from_u64(sum));
    }
    fn combiner(&self) -> Option<&dyn Combiner> {
        Some(self)
    }
    fn incremental(&self) -> Option<&dyn IncrementalReducer> {
        Some(self)
    }
    fn expected_keys(&self) -> Option<u64> {
        Some(self.expected)
    }
}

impl Combiner for ZipfCount {
    fn combine(&self, _key: &Key, values: Vec<Value>) -> Vec<Value> {
        vec![Value::from_u64(
            values.iter().filter_map(Value::as_u64).sum(),
        )]
    }
}

impl IncrementalReducer for ZipfCount {
    fn init(&self, _key: &Key, value: Value) -> Value {
        value
    }
    fn cb(&self, _key: &Key, acc: &mut Value, other: Value, _ctx: &mut ReduceCtx) {
        *acc = Value::from_u64(acc.as_u64().unwrap_or(0) + other.as_u64().unwrap_or(0));
    }
    fn finalize(&self, key: &Key, state: Value, ctx: &mut ReduceCtx) {
        ctx.emit(key.clone(), state);
    }
}

const N_KEYS: usize = 5000;
const N_RECORDS: usize = 20_000;

/// One Zipf(`exponent`)-distributed key token per record. Fixed-width key
/// text keeps per-entry memory uniform, so the resident-set size (the
/// paper's `s`) is the same under either policy — the comparison is at
/// genuinely fixed memory.
fn zipf_input(seed: u64, exponent: f64) -> JobInput {
    let mut cdf = Vec::with_capacity(N_KEYS);
    let mut acc = 0.0f64;
    for k in 1..=N_KEYS {
        acc += 1.0 / (k as f64).powf(exponent);
        cdf.push(acc);
    }
    for c in &mut cdf {
        *c /= acc;
    }
    let mut rng = SplitMix64::new(seed);
    let recs: Vec<Vec<u8>> = (0..N_RECORDS)
        .map(|_| {
            let u = rng.next_f64();
            let rank = cdf.partition_point(|&c| c < u);
            format!("k{rank:06}").into_bytes()
        })
        .collect();
    JobInput::from_records(recs)
}

/// The spill-happy 2-node cluster: 16 KB of reduce memory is the fixed
/// `M` every comparison below runs at.
fn spec() -> ClusterSpec {
    ClusterSpec::tiny()
}

fn run(
    framework: Framework,
    policy: AdmissionPolicy,
    threads: usize,
    input: &JobInput,
) -> JobOutcome {
    JobBuilder::new(ZipfCount {
        expected: N_KEYS as u64,
    })
    .framework(framework)
    .cluster(spec())
    .admission(policy)
    .exec(ExecConfig::oversubscribed(threads))
    .run(input)
    .expect("job runs")
}

fn adm(outcome: &JobOutcome) -> AdmissionStats {
    outcome
        .metrics
        .admission
        .expect("incremental frameworks report admission stats")
}

const INCREMENTAL: [Framework; 2] = [Framework::IncHash, Framework::DincHash];

/// Satellite (a): an explicit `--admission off` build is bit-identical to
/// a build that never touches the knob — the default path is untouched.
#[test]
fn admission_off_is_bit_identical_to_an_untouched_build() {
    let input = zipf_input(0xADB1, 1.1);
    for fw in INCREMENTAL {
        let untouched = JobBuilder::new(ZipfCount {
            expected: N_KEYS as u64,
        })
        .framework(fw)
        .cluster(spec())
        .run(&input)
        .expect("job runs");
        let explicit_off = run(fw, AdmissionPolicy::Off, 1, &input);
        assert_eq!(
            format!("{untouched:?}"),
            format!("{explicit_off:?}"),
            "{fw:?}: explicit Off diverged from the default build"
        );
    }
}

/// Satellite (b): with the policy on, the whole outcome — output, spill
/// accounting, admission counters, trace-visible metrics — is
/// bit-identical at 1, 2, 4 and 8 execution threads. Admission decisions
/// depend only on the delivered tuple order, never on scheduling.
#[test]
fn admission_on_outcome_is_bit_identical_across_thread_counts() {
    let input = zipf_input(0xADB2, 1.1);
    for fw in INCREMENTAL {
        let seq = format!("{:?}", run(fw, AdmissionPolicy::Lfu, 1, &input));
        for threads in [2, 4, 8] {
            let par = format!("{:?}", run(fw, AdmissionPolicy::Lfu, threads, &input));
            assert_eq!(
                seq, par,
                "{fw:?}: admission-on outcome diverged at {threads} threads"
            );
        }
    }
}

/// Admission must never change *what* is computed, only *where* state
/// lives: the output multiset is identical under both policies.
#[test]
fn admission_preserves_the_output_multiset() {
    for exponent in [0.8, 1.0, 1.2] {
        let input = zipf_input(0xADB3, exponent);
        for fw in INCREMENTAL {
            let off = run(fw, AdmissionPolicy::Off, 1, &input).sorted_output();
            let on = run(fw, AdmissionPolicy::Lfu, 1, &input).sorted_output();
            assert_eq!(
                off, on,
                "{fw:?}: admission changed the answer at Zipf {exponent}"
            );
        }
    }
}

/// Satellite (c): under Zipf skew ≥ 1.0, the LFU resident set's total
/// frequency (tuples absorbed into the keys still resident at finish) is
/// at least the first-come resident set's — the gate keeps hotter keys.
///
/// The strict comparison targets INC-hash, whose off-policy *is* the
/// paper's first-come admission. DINC-hash's baseline is the FREQUENT
/// monitor — already frequency-aware — so the second-chance gate only
/// refines near-ties there; its resident frequency must stay within 1%
/// while its measured γ must not regress.
#[test]
fn lfu_resident_set_frequency_dominates_first_come_under_zipf() {
    for exponent in [1.0, 1.2] {
        let input = zipf_input(0xADB4, exponent);
        for fw in INCREMENTAL {
            let off = adm(&run(fw, AdmissionPolicy::Off, 1, &input));
            let on = adm(&run(fw, AdmissionPolicy::Lfu, 1, &input));
            if fw == Framework::IncHash {
                assert!(
                    on.resident_frequency >= off.resident_frequency,
                    "{fw:?} @ Zipf {exponent}: LFU resident frequency {} < first-come {}",
                    on.resident_frequency,
                    off.resident_frequency
                );
            } else {
                assert!(
                    on.resident_frequency * 100 >= off.resident_frequency * 99,
                    "{fw:?} @ Zipf {exponent}: LFU resident frequency {} regressed >1% \
                     below the monitor baseline {}",
                    on.resident_frequency,
                    off.resident_frequency
                );
                assert!(
                    on.gamma_measured() >= off.gamma_measured(),
                    "{fw:?} @ Zipf {exponent}: γ regressed with the gate on"
                );
            }
        }
    }
}

/// The tentpole acceptance, test-enforced: at fixed `M` under Zipf 1.0,
/// measured coverage γ with the gate on strictly beats the first-come
/// engine's γ, meets the paper's `t/(t + M/(s+1))` lower bound at the
/// measured operating point, and `U_4` reduce-spill bytes drop.
#[test]
fn lfu_beats_first_come_gamma_and_spill_at_fixed_memory() {
    for fw in INCREMENTAL {
        let input = zipf_input(0xADB5, 1.0);
        let off_run = run(fw, AdmissionPolicy::Off, 1, &input);
        let on_run = run(fw, AdmissionPolicy::Lfu, 1, &input);
        let off = adm(&off_run);
        let on = adm(&on_run);

        assert!(
            off.rejected > 0,
            "{fw:?}: first-come never overflowed — the comparison is vacuous"
        );
        assert!(
            on.gamma_measured() > off.gamma_measured(),
            "{fw:?}: γ_on {:.4} does not beat first-come γ {:.4}",
            on.gamma_measured(),
            off.gamma_measured()
        );
        // The paper's first-come coverage bound, evaluated at the
        // measured operating point: t̄ = mean resident frequency,
        // M = offered tuples, s = resident keys.
        let t_bar = on.resident_frequency / on.resident_keys.max(1);
        let bound = opa_model::gamma::first_come_bound(t_bar, on.offered, on.resident_keys);
        assert!(
            on.gamma_measured() >= bound,
            "{fw:?}: γ_on {:.4} below the first-come bound {bound:.4}",
            on.gamma_measured()
        );
        assert!(
            on_run.metrics.reduce_spill_bytes < off_run.metrics.reduce_spill_bytes,
            "{fw:?}: U4 did not drop ({} on vs {} off)",
            on_run.metrics.reduce_spill_bytes,
            off_run.metrics.reduce_spill_bytes
        );
    }
}

/// Satellite bookkeeping: the admission identity `absorbed + rejected =
/// offered` holds under both policies, the attribution split only ever
/// charges bytes when something spilled, and eviction fields are zero
/// when the gate is off.
#[test]
fn admission_counters_balance_under_both_policies() {
    let input = zipf_input(0xADB6, 1.0);
    for fw in INCREMENTAL {
        for policy in [AdmissionPolicy::Off, AdmissionPolicy::Lfu] {
            let outcome = run(fw, policy, 1, &input);
            let s = adm(&outcome);
            assert!(
                opa_model::gamma::admission_consistent(s.offered, s.absorbed, s.rejected),
                "{fw:?}/{}: {} absorbed + {} rejected != {} offered",
                policy.label(),
                s.absorbed,
                s.rejected,
                s.offered
            );
            assert!(s.offered > 0, "{fw:?}: no tuples reached the reducers");
            assert!(
                s.resident_keys > 0,
                "{fw:?}/{}: nothing resident at finish",
                policy.label()
            );
            if policy.is_on() {
                assert!(
                    s.spill.admitted_evict + s.spill.rejected_arrival
                        <= outcome.metrics.reduce_spill_bytes,
                    "{fw:?}: attribution split exceeds measured U4"
                );
            } else {
                assert_eq!(s.admitted_evictions, 0, "{fw:?}: evictions with gate off");
                assert_eq!(
                    s.spill.admitted_evict, 0,
                    "{fw:?}: evict bytes with gate off"
                );
            }
        }
    }
}
