//! The failure-seeded simulation sweep: N seeds × four frameworks ×
//! {1, 8} execution threads, all under a uniform fault plan. Every cell
//! must (a) terminate, (b) produce output bit-identical to the fault-free
//! run, and (c) reproduce the identical failure trace — and the identical
//! full outcome — from the same seed at any thread count.
//!
//! Seed count defaults to 3 for `cargo test`; CI's sweep job raises it
//! with `OPA_FAULT_SEEDS=10`. The parallel thread count honours
//! `OPA_TEST_THREADS` (default 8) so the CI matrix exercises both ends.
//! On a mismatch the failure trace is dumped to `target/fault_traces/`
//! for artifact upload before the assertion fires.

mod common;

use common::{seeded_input, spec, WordCount};
use opa_common::fault::FaultConfig;
use opa_common::{AdmissionPolicy, ExecConfig};
use opa_core::cluster::Framework;
use opa_core::job::{JobBuilder, JobInput, JobOutcome};
use std::path::PathBuf;

const RATE: f64 = 0.15;
const FRAMEWORKS: [Framework; 4] = [
    Framework::SortMerge,
    Framework::MrHash,
    Framework::IncHash,
    Framework::DincHash,
];

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn run(
    framework: Framework,
    threads: usize,
    faults: Option<FaultConfig>,
    input: &JobInput,
) -> JobOutcome {
    run_with_admission(framework, threads, faults, AdmissionPolicy::Off, input)
}

fn run_with_admission(
    framework: Framework,
    threads: usize,
    faults: Option<FaultConfig>,
    admission: AdmissionPolicy,
    input: &JobInput,
) -> JobOutcome {
    let mut b = JobBuilder::new(WordCount)
        .framework(framework)
        .cluster(spec())
        .admission(admission)
        .exec(ExecConfig::oversubscribed(threads));
    if let Some(cfg) = faults {
        b = b.faults(cfg);
    }
    b.run(input).expect("job terminates under injected faults")
}

/// Writes the failure trace where CI can pick it up, then returns the
/// file path for the panic message.
fn dump_trace(label: &str, outcome: &JobOutcome) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .parent()
        .expect("target tmpdir has a parent")
        .join("fault_traces");
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!("{label}.txt"));
    let body = match &outcome.metrics.faults {
        Some(rep) => format!(
            "{} events / {} retries / {} wasted bytes / {} recovery\n{:#?}\n",
            rep.trace.len(),
            rep.total_retries(),
            rep.wasted_bytes,
            rep.recovery_time,
            rep.trace
        ),
        None => "no fault report\n".to_string(),
    };
    let _ = std::fs::write(&path, body);
    path
}

#[test]
fn fault_sweep_is_recoverable_and_deterministic() {
    let n_seeds = env_usize("OPA_FAULT_SEEDS", 3);
    let par_threads = env_usize("OPA_TEST_THREADS", 8).max(2);
    let input = seeded_input(0x5EED, 1000);

    let mut cells_fired = 0usize;
    for framework in FRAMEWORKS {
        let clean = run(framework, 1, None, &input).sorted_output();
        for seed in 0..n_seeds as u64 {
            let cfg = FaultConfig::uniform(0xF0 + seed, RATE);
            let label = format!("{framework:?}-seed{seed}");

            let seq = run(framework, 1, Some(cfg), &input);

            // (a)+(b): terminated, and recovery reproduced the fault-free
            // answer exactly.
            if seq.sorted_output() != clean {
                let path = dump_trace(&label, &seq);
                panic!("{label}: output diverged from fault-free run (trace at {path:?})");
            }

            // (c) same seed ⇒ identical trace and outcome, at 1 thread...
            let again = run(framework, 1, Some(cfg), &input);
            if format!("{seq:?}") != format!("{again:?}") {
                let path = dump_trace(&label, &again);
                panic!("{label}: same seed diverged across runs (trace at {path:?})");
            }

            // ... and across execution thread counts.
            let par = run(framework, par_threads, Some(cfg), &input);
            if format!("{seq:?}") != format!("{par:?}") {
                let path = dump_trace(&label, &par);
                panic!("{label}: outcome diverged at {par_threads} threads (trace at {path:?})");
            }

            let rep = seq.metrics.faults.as_ref().expect("fault report present");
            if rep.any_fired() {
                cells_fired += 1;
                // Acceptance: when faults fired, the metrics say so.
                assert!(
                    rep.total_retries() + rep.stragglers + rep.spill_io_errors > 0,
                    "{label}: faults fired but no recovery metrics recorded"
                );
            }
        }
    }

    assert!(
        cells_fired > 0,
        "no cell fired a single fault at rate {RATE} — sweep is vacuous"
    );
}

/// The admission-on leg of the sweep: the incremental frameworks with the
/// LFU gate enabled, under the same uniform fault plan. Map retries and
/// stragglers reshape the delivered tuple order, so admission *decisions*
/// may legitimately differ from the fault-free run — but the output
/// multiset may not, the whole outcome must reproduce from (seed,
/// threads), and the admission books must always balance. A reduce-crash-
/// only plan additionally round-trips the sketch and admission counters
/// through recovery re-replay exactly: re-replay re-times, never re-feeds,
/// so every counter must equal the fault-free run's.
#[test]
fn fault_sweep_with_admission_on_is_recoverable_and_deterministic() {
    let n_seeds = env_usize("OPA_FAULT_SEEDS", 3);
    let par_threads = env_usize("OPA_TEST_THREADS", 8).max(2);
    let input = seeded_input(0x5EED, 1000);
    let lfu = AdmissionPolicy::Lfu;

    for framework in [Framework::IncHash, Framework::DincHash] {
        let clean = run_with_admission(framework, 1, None, lfu, &input);
        let clean_out = clean.sorted_output();
        let clean_adm = clean.metrics.admission.expect("admission stats");
        for seed in 0..n_seeds as u64 {
            let cfg = FaultConfig::uniform(0xF0 + seed, RATE);
            let label = format!("{framework:?}-lfu-seed{seed}");

            let seq = run_with_admission(framework, 1, Some(cfg), lfu, &input);
            if seq.sorted_output() != clean_out {
                let path = dump_trace(&label, &seq);
                panic!("{label}: output diverged from fault-free run (trace at {path:?})");
            }
            let s = seq.metrics.admission.expect("admission stats");
            assert_eq!(
                s.absorbed + s.rejected,
                s.offered,
                "{label}: admission books do not balance under faults"
            );

            let par = run_with_admission(framework, par_threads, Some(cfg), lfu, &input);
            if format!("{seq:?}") != format!("{par:?}") {
                let path = dump_trace(&label, &par);
                panic!("{label}: outcome diverged at {par_threads} threads (trace at {path:?})");
            }
        }

        // Reduce crashes only: recovery re-replays the effect mailbox, so
        // the sketch and every admission counter survive bit-exactly.
        let crashes = FaultConfig {
            seed: 0xC4A5,
            reduce_failure_rate: RATE,
            ..FaultConfig::disabled()
        };
        let crashed = run_with_admission(framework, 1, Some(crashes), lfu, &input);
        assert!(
            crashed
                .metrics
                .faults
                .as_ref()
                .expect("fault report")
                .reduce_failures
                > 0,
            "{framework:?}: no reduce crash fired at rate {RATE}"
        );
        assert_eq!(
            crashed.metrics.admission.expect("admission stats"),
            clean_adm,
            "{framework:?}: reduce-crash recovery perturbed the admission state"
        );
        assert_eq!(
            crashed.sorted_output(),
            clean_out,
            "{framework:?}: reduce-crash recovery changed the admission-on output"
        );
    }
}
