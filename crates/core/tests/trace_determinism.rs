//! The trace layer's determinism contract: with tracing on, the JSONL
//! trace must be **byte-identical at any execution-layer thread count**
//! (emission happens only on the scheduling side, so worker threads can
//! never reorder or reword events), and turning tracing on must not
//! perturb the simulation itself — same metrics, output, progress and
//! timeline as the untraced run.

mod common;

use common::{seeded_input, spec, WordCount};
use opa_common::fault::FaultConfig;
use opa_common::ExecConfig;
use opa_core::cluster::Framework;
use opa_core::job::{JobBuilder, JobOutcome};
use opa_simio::codec::crc32;

fn run_traced(framework: Framework, threads: usize, faults: Option<FaultConfig>) -> JobOutcome {
    let input = seeded_input(0xC0FFEE, 1500);
    let mut b = JobBuilder::new(WordCount)
        .framework(framework)
        .cluster(spec())
        .exec(ExecConfig::oversubscribed(threads))
        .trace(true);
    if let Some(cfg) = faults {
        b = b.faults(cfg);
    }
    b.run(&input).expect("job runs")
}

fn jsonl(outcome: &JobOutcome) -> String {
    outcome.trace.as_ref().expect("trace enabled").to_jsonl()
}

#[test]
fn traces_are_byte_identical_across_thread_counts() {
    for framework in [
        Framework::SortMerge,
        Framework::SortMergePipelined,
        Framework::MrHash,
        Framework::IncHash,
        Framework::DincHash,
    ] {
        let seq = jsonl(&run_traced(framework, 1, None));
        assert!(!seq.is_empty(), "{framework:?}: trace must not be empty");
        for threads in [2, 8] {
            let par = jsonl(&run_traced(framework, threads, None));
            assert_eq!(
                seq, par,
                "{framework:?} trace diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn fault_event_traces_are_byte_identical_across_thread_counts() {
    // Fault and retry events ride the same scheduler-side path; the
    // injected failure plan is seeded, so the full fault vocabulary must
    // reproduce byte-for-byte too.
    let cfg = FaultConfig {
        seed: 9,
        map_failure_rate: 0.1,
        reduce_failure_rate: 0.1,
        straggler_rate: 0.05,
        ..FaultConfig::disabled()
    };
    let seq = jsonl(&run_traced(Framework::IncHash, 1, Some(cfg)));
    assert!(
        seq.contains("\"ev\":\"fault\"") && seq.contains("\"ev\":\"retry\""),
        "fault plan must actually fire for this pin to mean anything"
    );
    for threads in [2, 8] {
        let par = jsonl(&run_traced(Framework::IncHash, threads, Some(cfg)));
        assert_eq!(seq, par, "faulted trace diverged at {threads} threads");
    }
}

#[test]
fn tracing_does_not_perturb_the_simulation() {
    // Everything except the trace itself must be bit-identical between a
    // traced and an untraced run: tracing is observation, not behavior.
    let input = seeded_input(0xC0FFEE, 1500);
    let run = |trace: bool| {
        let o = JobBuilder::new(WordCount)
            .framework(Framework::SortMerge)
            .cluster(spec())
            .trace(trace)
            .run(&input)
            .expect("job runs");
        (
            format!(
                "{:?} {:?} {:?} {:?}",
                o.metrics, o.progress, o.timeline, o.usage
            ),
            o.sorted_output(),
            o.trace.is_some(),
        )
    };
    let (off_state, off_out, off_has) = run(false);
    let (on_state, on_out, on_has) = run(true);
    assert!(!off_has && on_has);
    assert_eq!(off_state, on_state, "tracing changed the simulation");
    assert_eq!(off_out, on_out, "tracing changed the output");
}

#[test]
fn rollup_agrees_with_job_metrics() {
    // The trace is a complete account: folding it back into a rollup must
    // reproduce the engine's own counters exactly.
    let outcome = run_traced(Framework::SortMerge, 4, None);
    let log = outcome.trace.as_ref().expect("trace enabled");
    let rollup = log.rollup();
    assert_eq!(rollup.first_pass, outcome.metrics.io_first_pass());
    assert_eq!(rollup.recovery, outcome.metrics.io_recovery);
    assert_eq!(rollup.map_output_bytes, outcome.metrics.map_output_bytes);
    assert_eq!(rollup.map_spill_bytes, outcome.metrics.map_spill_bytes);
    assert_eq!(rollup.t_end.max(1), rollup.t_end, "virtual end is set");
    assert_eq!(rollup.faults, 0);
    assert_eq!(rollup.batch_seals, 0);
}

#[test]
fn golden_trace_pin() {
    // CRC-32 pin over the canonical JSONL of one small workload. This is
    // the strictest regression guard the format has: any change to event
    // ordering, field order, numeric formatting or the event vocabulary
    // shows up here. If you changed the trace format *on purpose*, rerun
    // with `--nocapture`, verify the diff is intended, and update the pin.
    let outcome = run_traced(Framework::SortMerge, 1, None);
    let text = jsonl(&outcome);
    let crc = crc32(text.as_bytes());
    println!("golden trace: {} bytes, crc32 0x{crc:08X}", text.len());
    assert_eq!(
        crc, 0xF4AA_E046,
        "trace format drifted from the golden pin (see test comment)"
    );
}

#[test]
fn jsonl_roundtrip_preserves_every_event() {
    let outcome = run_traced(Framework::DincHash, 2, None);
    let log = outcome.trace.as_ref().expect("trace enabled");
    let text = log.to_jsonl();
    let back = opa_trace::TraceLog::from_jsonl(&text).expect("parse back");
    assert_eq!(back.events.len(), log.events.len());
    assert_eq!(back.to_jsonl(), text, "roundtrip must be lossless");
}
