//! Combine-scope equivalence: `CombineScope::Node` (and `Off`) may change
//! *when* and *how often* pairs cross the simulated network, but never
//! what the job computes. For every framework, thread count and fault
//! schedule, the output multiset under node-level combining must equal
//! the raw `Off` run's — and the staging table must demonstrably merge
//! cross-task keys (non-vacuity), or the whole matrix proves nothing.

use opa_common::fault::FaultConfig;
use opa_common::rng::SplitMix64;
use opa_common::{CombineScope, ExecConfig};
use opa_common::{Key, Value};
use opa_core::api::{Combiner, IncrementalReducer, Job, ReduceCtx};
use opa_core::cluster::{ClusterSpec, Framework};
use opa_core::job::{JobBuilder, JobInput, JobOutcome};

/// Count-style job exercising every framework path: a fold-capable
/// combiner for the materializing frameworks (node staging in Pairs
/// mode) and an incremental reducer for INC/DINC (States mode).
struct HitCount;

impl Job for HitCount {
    fn name(&self) -> &str {
        "hit-count"
    }
    fn map(&self, record: &[u8], emit: &mut dyn FnMut(&[u8], &[u8])) {
        for word in record.split(|&b| b == b' ').filter(|w| !w.is_empty()) {
            emit(word, &1u64.to_be_bytes());
        }
    }
    fn reduce(&self, key: &Key, values: Vec<Value>, ctx: &mut ReduceCtx) {
        let sum: u64 = values.iter().filter_map(Value::as_u64).sum();
        ctx.emit(key.clone(), Value::from_u64(sum));
    }
    fn combiner(&self) -> Option<&dyn Combiner> {
        Some(self)
    }
    fn incremental(&self) -> Option<&dyn IncrementalReducer> {
        Some(self)
    }
    fn expected_keys(&self) -> Option<u64> {
        Some(300)
    }
}

impl Combiner for HitCount {
    fn combine(&self, _key: &Key, values: Vec<Value>) -> Vec<Value> {
        vec![Value::from_u64(
            values.iter().filter_map(Value::as_u64).sum(),
        )]
    }
    fn supports_fold(&self) -> bool {
        true
    }
    fn fold(&self, _key: &Key, acc: &mut Value, value: Value) {
        *acc = Value::from_u64(acc.as_u64().unwrap_or(0) + value.as_u64().unwrap_or(0));
    }
}

impl IncrementalReducer for HitCount {
    fn init(&self, _key: &Key, value: Value) -> Value {
        value
    }
    fn cb(&self, _key: &Key, acc: &mut Value, other: Value, _ctx: &mut ReduceCtx) {
        *acc = Value::from_u64(acc.as_u64().unwrap_or(0) + other.as_u64().unwrap_or(0));
    }
    fn finalize(&self, key: &Key, state: Value, ctx: &mut ReduceCtx) {
        ctx.emit(key.clone(), state);
    }
}

/// Zipf-flavored input: a handful of hot keys that recur in *every*
/// chunk (so node staging has cross-task redundancy to collapse) plus a
/// long cold tail.
fn zipf_input(seed: u64, records: usize) -> JobInput {
    let mut rng = SplitMix64::new(seed);
    let recs: Vec<Vec<u8>> = (0..records)
        .map(|_| {
            let words = 3 + rng.next_below(4) as usize;
            let mut line = Vec::new();
            for w in 0..words {
                if w > 0 {
                    line.push(b' ');
                }
                let id = if rng.next_below(3) == 0 {
                    rng.next_below(6)
                } else {
                    6 + rng.next_below(250)
                };
                line.extend_from_slice(format!("k{id}").as_bytes());
            }
            line
        })
        .collect();
    JobInput::from_records(recs)
}

fn spec() -> ClusterSpec {
    let mut spec = ClusterSpec::paper_scaled();
    spec.system.chunk_size = 2048; // several map tasks per node
    spec.node_combine_buffer = 4096; // small budget → early flushes too
    spec
}

fn run(
    framework: Framework,
    scope: CombineScope,
    threads: usize,
    faults: FaultConfig,
    input: &JobInput,
) -> JobOutcome {
    JobBuilder::new(HitCount)
        .framework(framework)
        .cluster(spec())
        .combine(scope)
        .faults(faults)
        .exec(ExecConfig::oversubscribed(threads))
        .run(input)
        .expect("job runs")
}

/// Output pairs as a sorted multiset: combine scopes legitimately change
/// arrival (and thus emission) order, never content.
fn multiset(outcome: &JobOutcome) -> Vec<(Vec<u8>, Vec<u8>)> {
    let mut pairs: Vec<(Vec<u8>, Vec<u8>)> = outcome
        .output
        .iter()
        .map(|p| (p.key.bytes().to_vec(), p.value.bytes().to_vec()))
        .collect();
    pairs.sort();
    pairs
}

#[test]
fn node_scope_output_matches_off_across_frameworks_and_threads() {
    let input = zipf_input(0x51EF, 1400);
    for framework in Framework::ALL {
        let reference = multiset(&run(
            framework,
            CombineScope::Off,
            1,
            FaultConfig::disabled(),
            &input,
        ));
        assert!(!reference.is_empty(), "{framework:?}: empty reference run");
        for threads in [1usize, 2, 4, 8] {
            for scope in [CombineScope::Task, CombineScope::Node] {
                let got = multiset(&run(
                    framework,
                    scope,
                    threads,
                    FaultConfig::disabled(),
                    &input,
                ));
                assert_eq!(
                    reference, got,
                    "{framework:?} {scope:?} @ {threads} threads diverged from Off"
                );
            }
        }
    }
}

#[test]
fn node_scope_output_matches_off_under_fault_injection() {
    let input = zipf_input(0xFA57, 1200);
    for framework in Framework::ALL {
        let faults = FaultConfig::uniform(0xD15C, 0.02);
        let reference = multiset(&run(framework, CombineScope::Off, 1, faults, &input));
        for threads in [1usize, 4] {
            let node = run(framework, CombineScope::Node, threads, faults, &input);
            assert!(
                node.metrics
                    .faults
                    .as_ref()
                    .is_some_and(|r| r.any_fired()),
                "{framework:?}: fault leg is vacuous, nothing fired"
            );
            assert_eq!(
                reference,
                multiset(&node),
                "{framework:?} node-scope fault run @ {threads} threads diverged"
            );
        }
    }
}

#[test]
fn node_scope_outcome_bit_identical_across_thread_counts() {
    let input = zipf_input(0xB17, 1400);
    for framework in [Framework::SortMerge, Framework::IncHash] {
        let seq = format!(
            "{:?}",
            run(
                framework,
                CombineScope::Node,
                1,
                FaultConfig::disabled(),
                &input
            )
        );
        for threads in [2usize, 4, 8] {
            let par = format!(
                "{:?}",
                run(
                    framework,
                    CombineScope::Node,
                    threads,
                    FaultConfig::disabled(),
                    &input
                )
            );
            assert_eq!(
                seq, par,
                "{framework:?} node-scope outcome diverged at {threads} threads"
            );
        }
    }
}

/// Non-vacuity: under Zipf input the staging table must actually merge
/// keys *across* map tasks, in both Pairs mode (sort-merge/MR-hash, via
/// the combiner) and States mode (INC-hash, via `cb` at `Site::Map`) —
/// and the merging must show up as fewer shuffle bytes than task scope.
#[test]
fn node_table_merges_cross_task_keys_and_shrinks_shuffle() {
    let input = zipf_input(0x21F, 1600);
    for framework in [Framework::SortMerge, Framework::MrHash, Framework::IncHash] {
        let task = run(
            framework,
            CombineScope::Task,
            2,
            FaultConfig::disabled(),
            &input,
        );
        let node = run(
            framework,
            CombineScope::Node,
            2,
            FaultConfig::disabled(),
            &input,
        );
        assert!(
            task.metrics.node_combine.is_none(),
            "{framework:?}: task scope grew a node-combine stats block"
        );
        let nc = node
            .metrics
            .node_combine
            .expect("node scope reports staging stats");
        assert!(
            nc.merged_rows > 0,
            "{framework:?}: staging table never merged a cross-task key"
        );
        assert!(
            nc.flushed_bytes < nc.staged_bytes,
            "{framework:?}: staging shipped as much as it staged ({} vs {})",
            nc.flushed_bytes,
            nc.staged_bytes
        );
        assert!(
            node.metrics.shuffle_bytes < task.metrics.shuffle_bytes,
            "{framework:?}: node scope did not shrink the shuffle ({} vs {})",
            node.metrics.shuffle_bytes,
            task.metrics.shuffle_bytes
        );
    }
}
