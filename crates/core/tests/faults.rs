//! Fault-injection semantics, one fault class at a time: each class must
//! fire (at the configured rate, on this input, it always does), must be
//! fully recovered from — output bit-identical to the fault-free run —
//! and must surface its cost in `JobMetrics::faults`.

mod common;

use common::{seeded_input, spec, WordCount};
use opa_common::fault::{FaultConfig, FaultKind};
use opa_core::cluster::Framework;
use opa_core::job::{JobBuilder, JobInput, JobOutcome};

fn run_with(faults: FaultConfig, framework: Framework, input: &JobInput) -> JobOutcome {
    JobBuilder::new(WordCount)
        .framework(framework)
        .cluster(spec())
        .faults(faults)
        .run(input)
        .expect("job survives injected faults")
}

fn baseline(framework: Framework, input: &JobInput) -> JobOutcome {
    JobBuilder::new(WordCount)
        .framework(framework)
        .cluster(spec())
        .run(input)
        .expect("fault-free job runs")
}

/// Asserts the faulted run recovered completely: same output multiset as
/// the fault-free run (canonically sorted — fault-induced timing shifts
/// may reorder deliveries, never change content).
fn assert_recovered(faulted: &JobOutcome, clean: &JobOutcome, what: &str) {
    assert_eq!(
        faulted.sorted_output(),
        clean.sorted_output(),
        "{what}: output diverged from the fault-free run"
    );
    assert!(
        faulted.metrics.running_time >= clean.metrics.running_time,
        "{what}: recovery cannot make the job faster ({} < {})",
        faulted.metrics.running_time,
        clean.metrics.running_time
    );
}

#[test]
fn no_faults_means_no_report() {
    let input = seeded_input(0xFA01, 600);
    let out = baseline(Framework::IncHash, &input);
    assert!(out.metrics.faults.is_none());

    // An explicitly disabled config is equally inert.
    let out2 = run_with(FaultConfig::disabled(), Framework::IncHash, &input);
    assert!(out2.metrics.faults.is_none());
    assert_eq!(format!("{out:?}"), format!("{out2:?}"));
}

#[test]
fn map_failures_are_retried_and_recovered() {
    let input = seeded_input(0xFA02, 800);
    let clean = baseline(Framework::IncHash, &input);
    let cfg = FaultConfig {
        seed: 7,
        map_failure_rate: 0.3,
        ..FaultConfig::disabled()
    };
    let out = run_with(cfg, Framework::IncHash, &input);
    let rep = out.metrics.faults.as_ref().expect("report present");
    assert!(rep.map_failures > 0, "no map failures fired at rate 0.3");
    assert_eq!(rep.map_failures, rep.map_retries);
    assert!(rep.wasted_cpu.0 > 0, "aborted attempts burn CPU");
    assert!(rep.recovery_time.0 > 0, "retry backoff costs virtual time");
    assert!(rep.trace.iter().all(|e| e.kind == FaultKind::MapFailure));
    assert_recovered(&out, &clean, "map failures");
}

#[test]
fn stragglers_are_speculatively_reexecuted() {
    let input = seeded_input(0xFA03, 800);
    let clean = baseline(Framework::MrHash, &input);
    let cfg = FaultConfig {
        seed: 11,
        straggler_rate: 0.3,
        straggler_factor: 4.0,
        ..FaultConfig::disabled()
    };
    let out = run_with(cfg, Framework::MrHash, &input);
    let rep = out.metrics.faults.as_ref().expect("report present");
    assert!(rep.stragglers > 0, "no stragglers fired at rate 0.3");
    assert_eq!(rep.stragglers, rep.speculative_wins);
    assert!(rep.wasted_cpu.0 > 0, "slow attempts burn (scaled) CPU");
    assert!(rep.trace.iter().all(|e| e.kind == FaultKind::Straggler));
    assert_recovered(&out, &clean, "stragglers");
}

#[test]
fn reduce_crashes_replay_from_effect_mailboxes() {
    let input = seeded_input(0xFA04, 800);
    let clean = baseline(Framework::SortMerge, &input);
    let cfg = FaultConfig {
        seed: 13,
        reduce_failure_rate: 0.4,
        ..FaultConfig::disabled()
    };
    let out = run_with(cfg, Framework::SortMerge, &input);
    let rep = out.metrics.faults.as_ref().expect("report present");
    assert!(
        rep.reduce_failures > 0,
        "no reduce crashes fired at rate 0.4"
    );
    assert!(rep.recovery_time.0 > 0, "re-replay costs virtual time");
    assert!(rep.trace.iter().all(|e| e.kind == FaultKind::ReduceFailure));
    assert_recovered(&out, &clean, "reduce crashes");
}

#[test]
fn spill_io_errors_are_retried_in_place() {
    let input = seeded_input(0xFA05, 800);
    // Sort-merge spills the most — plenty of I/O ops to poison.
    let clean = baseline(Framework::SortMerge, &input);
    let cfg = FaultConfig {
        seed: 17,
        spill_error_rate: 0.2,
        ..FaultConfig::disabled()
    };
    let out = run_with(cfg, Framework::SortMerge, &input);
    let rep = out.metrics.faults.as_ref().expect("report present");
    assert!(rep.spill_io_errors > 0, "no spill errors fired at rate 0.2");
    assert!(rep.wasted_bytes > 0, "failed writes waste bytes");
    assert!(rep.trace.iter().all(|e| e.kind == FaultKind::SpillError));
    assert_recovered(&out, &clean, "spill I/O errors");
}

#[test]
fn high_rates_terminate_via_bounded_retry() {
    // Near-certain failure on every decision: the run must still
    // terminate (attempt ≥ max_retries forces success) and still produce
    // the fault-free output.
    let input = seeded_input(0xFA06, 600);
    let clean = baseline(Framework::IncHash, &input);
    let cfg = FaultConfig {
        seed: 19,
        max_retries: 2,
        ..FaultConfig::uniform(19, 0.95)
    };
    let out = run_with(cfg, Framework::IncHash, &input);
    let rep = out.metrics.faults.as_ref().expect("report present");
    assert!(rep.any_fired());
    assert!(rep.total_retries() > 0);
    assert_recovered(&out, &clean, "high-rate sweep");
}

#[test]
fn same_seed_reproduces_identical_trace() {
    let input = seeded_input(0xFA07, 800);
    let cfg = FaultConfig::uniform(23, 0.2);
    let a = run_with(cfg, Framework::DincHash, &input);
    let b = run_with(cfg, Framework::DincHash, &input);
    // The whole outcome — trace, metrics, output, progress — is
    // bit-identical; Debug covers every field.
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
    assert!(a.metrics.faults.as_ref().unwrap().any_fired());

    // A different seed draws a different failure trace.
    let c = run_with(FaultConfig::uniform(24, 0.2), Framework::DincHash, &input);
    assert_ne!(
        a.metrics.faults.as_ref().unwrap().trace,
        c.metrics.faults.as_ref().unwrap().trace,
        "distinct seeds should produce distinct traces at rate 0.2"
    );
    // ... but never a different answer.
    assert_eq!(a.sorted_output(), c.sorted_output());
}

#[test]
fn trace_is_sorted_canonically() {
    let input = seeded_input(0xFA08, 800);
    let out = run_with(FaultConfig::uniform(29, 0.25), Framework::SortMerge, &input);
    let rep = out.metrics.faults.as_ref().expect("report present");
    assert!(rep.any_fired());
    let mut sorted = rep.clone();
    sorted.sort_trace();
    assert_eq!(
        rep.trace, sorted.trace,
        "trace must arrive canonically sorted"
    );
}

#[test]
fn invalid_configs_are_rejected() {
    let input = seeded_input(0xFA09, 100);
    for bad in [
        FaultConfig {
            map_failure_rate: 1.0, // rate 1.0 would defeat per-attempt sampling
            ..FaultConfig::disabled()
        },
        FaultConfig {
            straggler_rate: 0.1,
            straggler_factor: 0.5,
            ..FaultConfig::disabled()
        },
        FaultConfig {
            spill_error_rate: 0.1,
            max_retries: 0,
            ..FaultConfig::disabled()
        },
        FaultConfig {
            reduce_failure_rate: f64::NAN,
            ..FaultConfig::disabled()
        },
    ] {
        let res = JobBuilder::new(WordCount)
            .framework(Framework::IncHash)
            .cluster(spec())
            .faults(bad)
            .run(&input);
        assert!(res.is_err(), "config should be rejected: {bad:?}");
    }
}
