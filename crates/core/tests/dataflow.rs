//! Dataflow-chain correctness battery.
//!
//! The contract under test: a chained run — in-memory handoffs, skipped
//! reshuffles and all — produces output *bit-identical* to the classic
//! staged pipeline that materializes every intermediate through a real
//! file, at any thread count and under fault injection; the skip path
//! really moves zero shuffle bytes; and mid-chain checkpoint/restore
//! changes nothing but the amount of work re-done.

// Only `WordCount` and `seeded_input` are needed here; the fault-matrix
// fixtures in `common` stay unused in this binary.
#[allow(dead_code)]
mod common;

use common::{seeded_input, WordCount};
use opa_common::fault::FaultConfig;
use opa_common::{decode_kv, Key, Pair, Value};
use opa_core::api::{Job, ReduceCtx};
use opa_core::cluster::{ClusterSpec, Framework};
use opa_core::dataflow::{Dataflow, Dataset, Handoff, HandoffPolicy, PartitionSpec};
use opa_core::job::{JobBuilder, JobInput};
use opa_trace::TraceEvent;
use std::path::PathBuf;

/// Key-identity stage: triples each count. Declares itself
/// partition-preserving, so an Auto chain may skip its shuffle.
struct Scale;

impl Job for Scale {
    fn name(&self) -> &str {
        "scale"
    }
    fn map(&self, record: &[u8], emit: &mut dyn FnMut(&[u8], &[u8])) {
        let (k, v) = decode_kv(record).expect("framed dataflow record");
        let n = u64::from_be_bytes(v.try_into().expect("u64 count"));
        emit(k, &(3 * n).to_be_bytes());
    }
    fn reduce(&self, key: &Key, values: Vec<Value>, ctx: &mut ReduceCtx) {
        let sum: u64 = values.iter().filter_map(Value::as_u64).sum();
        ctx.emit(key.clone(), Value::from_u64(sum));
    }
    fn partition_preserving(&self) -> bool {
        true
    }
}

/// Re-keying stage: buckets words by first letter. Changes keys, so it
/// must reshuffle.
struct ByFirstLetter;

impl Job for ByFirstLetter {
    fn name(&self) -> &str {
        "by-first-letter"
    }
    fn map(&self, record: &[u8], emit: &mut dyn FnMut(&[u8], &[u8])) {
        let (k, v) = decode_kv(record).expect("framed dataflow record");
        emit(&k[..1], v);
    }
    fn reduce(&self, key: &Key, values: Vec<Value>, ctx: &mut ReduceCtx) {
        let sum: u64 = values.iter().filter_map(Value::as_u64).sum();
        ctx.emit(key.clone(), Value::from_u64(sum));
    }
}

fn tiny() -> ClusterSpec {
    ClusterSpec::tiny()
}

fn chain(threads: usize) -> Dataflow {
    Dataflow::new(tiny())
        .then(WordCount, Framework::MrHash)
        .then(Scale, Framework::MrHash)
        .then(ByFirstLetter, Framework::SortMerge)
        .threads(threads)
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("opa-df-test-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// The classic pipeline the chain must match: each stage through the
/// ordinary engine, every intermediate written to and re-read from a
/// real file.
fn staged_through_files(input: &JobInput, dir: &PathBuf) -> Vec<Pair> {
    let spec = tiny();
    std::fs::create_dir_all(dir).unwrap();
    let one = JobBuilder::new(WordCount)
        .framework(Framework::MrHash)
        .cluster(spec)
        .run(input)
        .expect("stage 1");
    let p1 = dir.join("stage1.opadf");
    one.dataset(&spec).write(&p1).expect("materialize stage 1");
    let two = JobBuilder::new(Scale)
        .framework(Framework::MrHash)
        .cluster(spec)
        .run(&Dataset::read(&p1).expect("re-read").to_input())
        .expect("stage 2");
    let p2 = dir.join("stage2.opadf");
    two.dataset(&spec).write(&p2).expect("materialize stage 2");
    let three = JobBuilder::new(ByFirstLetter)
        .framework(Framework::SortMerge)
        .cluster(spec)
        .run(&Dataset::read(&p2).expect("re-read").to_input())
        .expect("stage 3");
    std::fs::remove_dir_all(dir).ok();
    three.sorted_output()
}

#[test]
fn chained_matches_staged_files_at_every_thread_count() {
    let input = seeded_input(11, 600);
    let reference = staged_through_files(&input, &tmp_dir("staged"));
    assert!(!reference.is_empty());
    for threads in [1, 2, 4, 8] {
        let out = chain(threads).run(&input).expect("chain runs");
        assert_eq!(out.stages[0].handoff, Handoff::Source);
        assert_eq!(
            out.stages[1].handoff,
            Handoff::InMemory,
            "scale stage is partition-compatible"
        );
        assert_eq!(
            out.stages[2].handoff,
            Handoff::Reshuffled,
            "re-keying stage must reshuffle"
        );
        assert_eq!(
            out.sorted_output(),
            reference,
            "chained output must be bit-identical to the staged pipeline at {threads} threads"
        );
    }
}

#[test]
fn every_policy_agrees_on_output() {
    let input = seeded_input(12, 400);
    let auto = chain(2).run(&input).expect("auto");
    let reshuffle = chain(2)
        .policy(HandoffPolicy::Reshuffle)
        .run(&input)
        .expect("reshuffle");
    let materialize = chain(2)
        .policy(HandoffPolicy::Materialize)
        .run(&input)
        .expect("materialize");
    assert_eq!(reshuffle.stages[1].handoff, Handoff::Reshuffled);
    assert_eq!(materialize.stages[1].handoff, Handoff::Materialized);
    assert_eq!(auto.sorted_output(), reshuffle.sorted_output());
    assert_eq!(auto.sorted_output(), materialize.sorted_output());
}

#[test]
fn faults_do_not_change_chained_output() {
    let input = seeded_input(13, 500);
    let clean = chain(4).run(&input).expect("fault-free");
    let faulty = chain(4)
        .faults(FaultConfig::uniform(9, 0.25))
        .run(&input)
        .expect("faulty chain still completes");
    assert!(
        faulty
            .stages
            .iter()
            .any(|s| s.metrics.faults.as_ref().is_some_and(|f| f.any_fired())),
        "the fault plan must actually fire for this test to mean anything"
    );
    assert_eq!(clean.sorted_output(), faulty.sorted_output());
}

#[test]
fn skip_path_moves_zero_shuffle_bytes_and_is_traced() {
    let input = seeded_input(14, 400);
    let out = chain(1).trace(true).run(&input).expect("chain runs");
    let skipped = &out.stages[1];
    assert_eq!(skipped.handoff, Handoff::InMemory);
    assert_eq!(
        skipped.metrics.map_output_bytes, 0,
        "in-memory stage must report zero shuffle volume"
    );
    assert!(skipped.bytes_saved > 0);

    let trace = out.trace.as_ref().expect("chain trace requested");
    let mut saw_skip = false;
    let mut stage0_handoff_reshuffled = None;
    for ev in &trace.events {
        match *ev {
            TraceEvent::ReshuffleSkipped {
                stage, bytes_saved, ..
            } => {
                assert_eq!(stage, 1);
                assert_eq!(bytes_saved, skipped.bytes_saved);
                saw_skip = true;
            }
            TraceEvent::StageHandoff {
                stage: 0,
                reshuffled,
                ..
            } => stage0_handoff_reshuffled = Some(reshuffled),
            _ => {}
        }
    }
    assert!(saw_skip, "reshuffle_skipped event must appear in the trace");
    assert_eq!(
        stage0_handoff_reshuffled,
        Some(false),
        "stage 0 -> 1 handoff must be marked as not reshuffled"
    );

    // The rollup sees the same story.
    let rollup = opa_trace::Rollup::from_events(&trace.events);
    assert_eq!(rollup.stage_skips, 1);
    assert_eq!(rollup.stage_reshuffles, 1); // by-first-letter
    assert_eq!(rollup.reshuffle_bytes_saved, skipped.bytes_saved);
}

#[test]
fn run_from_makes_a_dataset_a_first_class_source() {
    let input = seeded_input(15, 300);
    let spec = tiny();
    let counts = JobBuilder::new(WordCount)
        .framework(Framework::IncHash)
        .cluster(spec)
        .run(&input)
        .expect("producer job");
    let ds = counts.dataset(&spec);
    assert!(ds.verify_placement());
    assert_eq!(ds.spec(), PartitionSpec::of(&spec));

    let out = Dataflow::new(spec)
        .then(Scale, Framework::MrHash)
        .run_from(&ds)
        .expect("chain from dataset");
    assert_eq!(
        out.stages[0].handoff,
        Handoff::InMemory,
        "a compatible dataset source skips even the first stage's shuffle"
    );
    // Scaling a count job's output by 3 = scaling each sorted value by 3.
    let want: Vec<Pair> = counts
        .sorted_output()
        .into_iter()
        .map(|p| Pair::new(p.key, Value::from_u64(p.value.as_u64().unwrap() * 3)))
        .collect();
    assert_eq!(out.sorted_output(), want);
}

#[test]
fn checkpoint_resume_mid_chain_is_equivalent() {
    let input = seeded_input(16, 500);
    let dir = tmp_dir("ckpt");
    let full = chain(2)
        .checkpoints(&dir)
        .run(&input)
        .expect("checkpointing run");
    assert_eq!(full.resumed_from, None);

    // All three stage files exist: a resume restores the last stage's
    // output and re-executes nothing.
    let warm = chain(2)
        .checkpoints(&dir)
        .resume(true)
        .run(&input)
        .expect("warm resume");
    assert_eq!(warm.resumed_from, Some(2));
    assert!(warm.stages.is_empty());
    assert_eq!(warm.sorted_output(), full.sorted_output());

    // Delete the later checkpoints: resume must restart mid-chain from
    // stage 0's output and still converge to the identical answer.
    std::fs::remove_file(dir.join("stage-1.opadf")).unwrap();
    std::fs::remove_file(dir.join("stage-2.opadf")).unwrap();
    let mid = chain(2)
        .checkpoints(&dir)
        .resume(true)
        .run(&input)
        .expect("mid-chain resume");
    assert_eq!(mid.resumed_from, Some(0));
    assert_eq!(mid.stages.len(), 2, "stages 1 and 2 re-execute");
    assert_eq!(mid.stages[0].handoff, Handoff::InMemory);
    assert_eq!(mid.sorted_output(), full.sorted_output());

    // A different chain must refuse these checkpoints entirely.
    let foreign = Dataflow::new(tiny())
        .then(WordCount, Framework::MrHash)
        .then(ByFirstLetter, Framework::MrHash)
        .threads(2)
        .checkpoints(&dir)
        .resume(true)
        .run(&input)
        .expect("foreign chain runs cold");
    assert_eq!(
        foreign.resumed_from, None,
        "fingerprint mismatch: cold start"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn union_rejects_mismatched_partitioning() {
    let input = seeded_input(17, 200);
    let a = JobBuilder::new(WordCount)
        .framework(Framework::MrHash)
        .cluster(tiny())
        .run(&input)
        .expect("job a")
        .dataset(&tiny());
    let mut other = tiny();
    other.hash_seed ^= 0xbeef;
    let b = JobBuilder::new(WordCount)
        .framework(Framework::MrHash)
        .cluster(other)
        .run(&input)
        .expect("job b")
        .dataset(&other);
    assert!(Dataset::union(&a, &b).is_err(), "different hash seeds");
    let ok = Dataset::union(&a, &a).expect("same spec unions fine");
    assert_eq!(ok.len(), 2 * a.len());
}
