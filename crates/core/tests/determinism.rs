//! The engine's determinism contract: a job's [`JobOutcome`] must be
//! bit-identical at any execution-layer thread count. The scheduling
//! layer replays recorded effects in event order, so worker threads may
//! only change wall-clock time — never metrics, output, progress curves,
//! timelines or disk-queue interactions.

use opa_common::fault::FaultConfig;
use opa_common::rng::SplitMix64;
use opa_common::ExecConfig;
use opa_common::{Key, Value};
use opa_core::api::{Combiner, IncrementalReducer, Job, ReduceCtx};
use opa_core::cluster::{ClusterSpec, Framework};
use opa_core::job::{JobBuilder, JobInput};

/// Word-count-style job with a combiner and an incremental reducer, so
/// every framework (sort-merge, hash, INC, DINC) has its natural path.
struct WordCount;

impl Job for WordCount {
    fn name(&self) -> &str {
        "word-count"
    }
    fn map(&self, record: &[u8], emit: &mut dyn FnMut(&[u8], &[u8])) {
        for word in record.split(|&b| b == b' ').filter(|w| !w.is_empty()) {
            emit(word, &1u64.to_be_bytes());
        }
    }
    fn reduce(&self, key: &Key, values: Vec<Value>, ctx: &mut ReduceCtx) {
        let sum: u64 = values.iter().filter_map(Value::as_u64).sum();
        ctx.emit(key.clone(), Value::from_u64(sum));
    }
    fn combiner(&self) -> Option<&dyn Combiner> {
        Some(self)
    }
    fn incremental(&self) -> Option<&dyn IncrementalReducer> {
        Some(self)
    }
    fn expected_keys(&self) -> Option<u64> {
        Some(400)
    }
}

impl Combiner for WordCount {
    fn combine(&self, _key: &Key, values: Vec<Value>) -> Vec<Value> {
        vec![Value::from_u64(
            values.iter().filter_map(Value::as_u64).sum(),
        )]
    }
}

impl IncrementalReducer for WordCount {
    fn init(&self, _key: &Key, value: Value) -> Value {
        value
    }
    fn cb(&self, _key: &Key, acc: &mut Value, other: Value, _ctx: &mut ReduceCtx) {
        *acc = Value::from_u64(acc.as_u64().unwrap_or(0) + other.as_u64().unwrap_or(0));
    }
    fn finalize(&self, key: &Key, state: Value, ctx: &mut ReduceCtx) {
        ctx.emit(key.clone(), state);
    }
}

/// A seeded input with a skewed key distribution — enough records for
/// several chunks per node and plenty of shuffle traffic.
fn seeded_input(seed: u64, records: usize) -> JobInput {
    let mut rng = SplitMix64::new(seed);
    let recs: Vec<Vec<u8>> = (0..records)
        .map(|_| {
            let words = 3 + rng.next_below(5) as usize;
            let mut line = Vec::new();
            for w in 0..words {
                if w > 0 {
                    line.push(b' ');
                }
                // Zipf-ish skew: a few hot words, a long cold tail.
                let id = if rng.next_below(4) == 0 {
                    rng.next_below(8)
                } else {
                    8 + rng.next_below(300)
                };
                line.extend_from_slice(format!("w{id}").as_bytes());
            }
            line
        })
        .collect();
    JobInput::from_records(recs)
}

fn spec() -> ClusterSpec {
    let mut spec = ClusterSpec::paper_scaled();
    spec.system.chunk_size = 2048; // many chunks → many map tasks
    spec
}

fn run(framework: Framework, threads: usize, input: &JobInput) -> String {
    let outcome = JobBuilder::new(WordCount)
        .framework(framework)
        .cluster(spec())
        .exec(ExecConfig::oversubscribed(threads))
        .run(input)
        .expect("job runs");
    // JobMetrics has no PartialEq; the Debug form covers every field of
    // the outcome, which is exactly the bit-identity contract.
    format!("{outcome:?}")
}

#[test]
fn outcome_is_bit_identical_across_thread_counts() {
    let input = seeded_input(0xC0FFEE, 1500);
    for framework in [
        Framework::SortMerge,
        Framework::MrHash,
        Framework::IncHash,
        Framework::DincHash,
    ] {
        let seq = run(framework, 1, &input);
        for threads in [2, 4, 8] {
            let par = run(framework, threads, &input);
            assert_eq!(
                seq, par,
                "{framework:?} outcome diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn pipelined_snapshots_are_bit_identical_across_thread_counts() {
    // Snapshot scheduling rides on delivery processing, the part most
    // reshaped by burst mailboxes — worth its own matrix entry.
    let input = seeded_input(0xBEEF, 1200);
    let run_snap = |threads: usize| {
        let outcome = JobBuilder::new(WordCount)
            .framework(Framework::SortMergePipelined)
            .cluster(spec())
            .snapshot_points(&[0.25, 0.5, 0.75])
            .exec(ExecConfig::oversubscribed(threads))
            .run(&input)
            .expect("job runs");
        format!("{outcome:?}")
    };
    let seq = run_snap(1);
    for threads in [2, 4, 8] {
        assert_eq!(
            seq,
            run_snap(threads),
            "snapshots diverged at {threads} threads"
        );
    }
}

#[test]
fn two_wave_jobs_are_bit_identical_across_thread_counts() {
    // Second-wave reducers defer deliveries and re-read map output from
    // disk; their arrival ordering is scheduling-sensitive by design.
    let input = seeded_input(0xDADA, 1200);
    let run_waves = |threads: usize| {
        let mut s = spec();
        s.system.reducers_per_node = s.hardware.reduce_slots * 2;
        let outcome = JobBuilder::new(WordCount)
            .framework(Framework::SortMerge)
            .cluster(s)
            .exec(ExecConfig::oversubscribed(threads))
            .run(&input)
            .expect("job runs");
        format!("{outcome:?}")
    };
    let seq = run_waves(1);
    for threads in [2, 4, 8] {
        assert_eq!(seq, run_waves(threads), "diverged at {threads} threads");
    }
}

#[test]
fn fault_injection_is_bit_identical_across_thread_counts() {
    // Injected faults force retries and recovery reads, which reshuffle
    // the work-stealing pool's task mix mid-job — steal order still must
    // not leak into the outcome, including the recorded fault trace.
    let input = seeded_input(0xFA17, 1200);
    let run_faulty = |framework: Framework, threads: usize| {
        let outcome = JobBuilder::new(WordCount)
            .framework(framework)
            .cluster(spec())
            .faults(FaultConfig::uniform(0xD15C, 0.02))
            .exec(ExecConfig::oversubscribed(threads))
            .run(&input)
            .expect("job terminates under injected faults");
        format!("{outcome:?}")
    };
    for framework in [Framework::SortMerge, Framework::IncHash] {
        let seq = run_faulty(framework, 1);
        for threads in [2, 4, 8] {
            assert_eq!(
                seq,
                run_faulty(framework, threads),
                "{framework:?} fault run diverged at {threads} threads"
            );
        }
    }
}
