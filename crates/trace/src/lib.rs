//! Structured trace & observability layer for the OPA engine.
//!
//! The paper's central claim is *analytical*: closed forms for per-node
//! I/O bytes (Prop. 3.1, with the λ_F multi-pass-merge cost) and request
//! counts (Prop. 3.2) predict MapReduce behaviour that stock Hadoop
//! could not even surface without instrumentation. This crate is the
//! instrumentation side of that claim for our simulator:
//!
//! * [`TraceEvent`]/[`Tracer`]/[`TraceLog`] — a structured event
//!   vocabulary the scheduler emits while a job runs (task start/finish,
//!   every device I/O, merge passes, shuffle deliveries, fault
//!   decisions, retries, batch seals, checkpoints), serialized as
//!   deterministic JSONL: byte-identical at any execution-thread count.
//! * [`rollup::Rollup`] — per-phase aggregates (Table 2's `U_1..U_5`
//!   byte decomposition, request counts, phase busy times, spill-size
//!   histograms) folded from the raw stream.
//! * [`chrome`] — a Chrome-trace/Perfetto exporter rendering Fig 2/Fig 7
//!   style task timelines from a run (`opa trace --format chrome`).
//! * [`drift`] — the model-drift checker: evaluates the `opa-model`
//!   predictions against a measured rollup for the same (C, F, R) and
//!   reports per-term relative error.
//!
//! The event glossary — every event type, every field, its unit and the
//! paper quantity it corresponds to — lives in `OBSERVABILITY.md` at the
//! repository root.
//!
//! # Worked example
//!
//! Traces usually come from `JobBuilder::trace(true)` in `opa-core` (or
//! `opa run --trace-out`), but the layer is self-contained — events in,
//! analysis out:
//!
//! ```
//! use opa_trace::{SpanKind, TraceEvent, TraceLog, Tracer};
//! use opa_simio::IoCategory;
//!
//! // The scheduler pushes events in virtual-time order…
//! let mut tracer = Tracer::new();
//! tracer.push(TraceEvent::MapStart { t: 0, chunk: 0, attempt: 0, node: 0 });
//! tracer.push(TraceEvent::Io {
//!     t0: 0, t: 120, node: 0, cat: IoCategory::MapInput,
//!     read: 65536, written: 0, seeks: 1, recovery: false,
//! });
//! tracer.push(TraceEvent::MapFinish {
//!     t0: 0, t: 500, chunk: 0, node: 0,
//!     cpu: 380, output_bytes: 65536, spill_bytes: 0,
//! });
//! tracer.push(TraceEvent::Span { t0: 0, t: 500, node: 0, kind: SpanKind::Map });
//! let log = tracer.into_log();
//!
//! // …the JSONL encoding round-trips losslessly…
//! let text = log.to_jsonl();
//! assert_eq!(TraceLog::from_jsonl(&text).unwrap(), log);
//!
//! // …and the rollup recovers the aggregate view.
//! let rollup = log.rollup();
//! assert_eq!(rollup.map_tasks, 1);
//! assert_eq!(rollup.first_pass.read_bytes(IoCategory::MapInput), 65536);
//! assert_eq!(rollup.span_time_of(SpanKind::Map), 500);
//!
//! // A Perfetto-loadable timeline is one call away.
//! assert!(log.to_chrome().contains("\"traceEvents\""));
//! ```
//!
//! # Determinism contract
//!
//! Everything that feeds a [`Tracer`] runs on the scheduler thread in
//! event order — the same discipline that makes `JobOutcome`
//! bit-identical at any thread count extends to traces. The test suites
//! (`crates/core/tests/trace_determinism.rs`,
//! `crates/stream/tests/stream_trace.rs`) pin byte-identical JSONL at
//! threads {1,8} plus a golden CRC for a small workload.

#![warn(missing_docs)]

pub mod chrome;
pub mod drift;
mod event;
pub mod json;
pub mod rollup;

pub use event::{
    fault_kind_label, io_category_label, ServeJobState, SpanKind, TraceEvent, TraceLog, Tracer,
};
pub use rollup::{Rollup, StageRow};
