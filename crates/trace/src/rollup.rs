//! Per-phase metric rollups computed from a raw trace.
//!
//! A [`Rollup`] is the bridge between the event stream and the paper's
//! aggregate quantities: Table 2's `U_1..U_5` byte decomposition and
//! request count `S` (from `io` events), the Fig 2(a)-style phase busy
//! times (from `span` events), and a log₂ histogram of spill sizes. The
//! model-drift checker ([`crate::drift`]) consumes these numbers; the
//! `opa trace --format summary` CLI prints them.

use crate::event::{SpanKind, TraceEvent};
use opa_simio::{IoCategory, IoOp, IoStats};
use std::collections::BTreeSet;

/// Number of log₂ buckets in the spill-size histogram (covers up to
/// 2^63 bytes).
pub const SPILL_HIST_BUCKETS: usize = 64;

/// Per-stage summary row of a dataflow chain, folded from the
/// `stage_start`/`stage_handoff`/`reshuffle_skipped` event triple.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageRow {
    /// Stage index within the chain.
    pub stage: u32,
    /// Records entering the stage's map phase.
    pub records_in: u64,
    /// Bytes entering the stage's map phase.
    pub bytes_in: u64,
    /// Records handed to the next stage (0 for the final stage, which
    /// emits no handoff).
    pub records_out: u64,
    /// Bytes handed to the next stage.
    pub bytes_out: u64,
    /// Whether the *outgoing* handoff crossed a real shuffle.
    pub reshuffled: bool,
    /// Shuffle bytes this stage avoided via the partition-stable skip.
    pub bytes_saved: u64,
}

/// Aggregate view of one trace. All byte counts are cluster-wide totals
/// (divide by [`Rollup::nodes`] for the per-node quantities the model
/// predicts); all times are virtual microseconds.
#[derive(Debug, Clone)]
pub struct Rollup {
    /// Fault-free (first-pass) I/O, `U_1..U_5` + `S`. This is the
    /// quantity Props. 3.1/3.2 predict.
    pub first_pass: IoStats,
    /// Additional I/O re-done while recovering from injected faults
    /// (`io` events flagged `recovery`).
    pub recovery: IoStats,
    /// Distinct nodes that appear anywhere in the trace.
    pub nodes: u32,
    /// End of the last event (virtual job makespan bound, µs).
    pub t_end: u64,
    /// Total busy time per span kind (map/shuffle/merge/reduce), µs.
    pub span_time: [u64; 4],
    /// Number of closed spans per kind.
    pub span_count: [u64; 4],
    /// Committed map tasks.
    pub map_tasks: u64,
    /// Map-task dispatches, retries included.
    pub map_attempts: u64,
    /// Sum of committed map-task CPU (µs).
    pub map_cpu: u64,
    /// Map output bytes across committed tasks (`D·K_m`).
    pub map_output_bytes: u64,
    /// Map-side internal spill bytes written across committed tasks.
    pub map_spill_bytes: u64,
    /// Shuffle payloads delivered.
    pub shuffle_transfers: u64,
    /// Total bytes shuffled over the network.
    pub shuffle_bytes: u64,
    /// Node staging-table flushes (`node_combine` events; 0 unless the
    /// job ran under `CombineScope::Node`).
    pub node_combine_flushes: u64,
    /// Pre-combine bytes offered to the node staging tables.
    pub node_combine_staged: u64,
    /// Post-combine bytes the node flushes shipped.
    pub node_combine_flushed: u64,
    /// Reduce tasks that finished.
    pub reduce_tasks: u64,
    /// Fault-injection decisions that fired.
    pub faults: u64,
    /// Recovery retries scheduled.
    pub retries: u64,
    /// Input records quarantined by per-record UDF poison.
    pub poisons: u64,
    /// Stream batch seals observed (0 for batch jobs).
    pub batch_seals: u64,
    /// Stream checkpoints written.
    pub checkpoints: u64,
    /// Total checkpoint bytes.
    pub checkpoint_bytes: u64,
    /// Admission summaries observed (one per reducer when the LFU
    /// admission policy is on; 0 otherwise).
    pub admission_reducers: u64,
    /// Tuples offered to admission-gated reduce tables.
    pub admission_offered: u64,
    /// Tuples absorbed into resident state.
    pub admission_absorbed: u64,
    /// Evict-and-admit decisions across all reducers.
    pub admission_evictions: u64,
    /// Arrivals denied admission and spilled.
    pub admission_rejected: u64,
    /// Log₂ histogram of first-pass spill *write* sizes (`U_2` + `U_4`
    /// write operations): bucket `i` counts writes with
    /// `2^i ≤ bytes < 2^(i+1)` (bucket 0 also holds 1-byte writes).
    pub spill_hist: [u64; SPILL_HIST_BUCKETS],
    /// Dataflow stages observed (`stage_start` events; 0 for single jobs).
    pub stages: u64,
    /// Stage handoffs that crossed a real shuffle.
    pub stage_reshuffles: u64,
    /// Stages whose incoming handoff stayed in memory
    /// (`reshuffle_skipped` events — partition-stable skips).
    pub stage_skips: u64,
    /// Total shuffle bytes avoided across all `reshuffle_skipped` stages.
    pub reshuffle_bytes_saved: u64,
    /// Per-stage rows of the dataflow chain, in stage order (empty for
    /// single jobs).
    pub stage_rows: Vec<StageRow>,
}

fn span_index(kind: SpanKind) -> usize {
    match kind {
        SpanKind::Map => 0,
        SpanKind::Shuffle => 1,
        SpanKind::Merge => 2,
        SpanKind::Reduce => 3,
    }
}

impl Rollup {
    /// Folds an event stream into its rollup.
    pub fn from_events(events: &[TraceEvent]) -> Rollup {
        let mut r = Rollup {
            first_pass: IoStats::new(),
            recovery: IoStats::new(),
            nodes: 0,
            t_end: 0,
            span_time: [0; 4],
            span_count: [0; 4],
            map_tasks: 0,
            map_attempts: 0,
            map_cpu: 0,
            map_output_bytes: 0,
            map_spill_bytes: 0,
            shuffle_transfers: 0,
            shuffle_bytes: 0,
            node_combine_flushes: 0,
            node_combine_staged: 0,
            node_combine_flushed: 0,
            reduce_tasks: 0,
            faults: 0,
            retries: 0,
            poisons: 0,
            batch_seals: 0,
            checkpoints: 0,
            checkpoint_bytes: 0,
            admission_reducers: 0,
            admission_offered: 0,
            admission_absorbed: 0,
            admission_evictions: 0,
            admission_rejected: 0,
            spill_hist: [0; SPILL_HIST_BUCKETS],
            stages: 0,
            stage_reshuffles: 0,
            stage_skips: 0,
            reshuffle_bytes_saved: 0,
            stage_rows: Vec::new(),
        };
        // Dataflow-level events carry stage ordinals, not virtual µs, so
        // they are kept out of the `t_end` makespan bound below.
        let stage_row = |rows: &mut Vec<StageRow>, stage: u32| -> usize {
            match rows.iter().position(|row| row.stage == stage) {
                Some(i) => i,
                None => {
                    rows.push(StageRow {
                        stage,
                        ..StageRow::default()
                    });
                    rows.len() - 1
                }
            }
        };
        let mut nodes: BTreeSet<u32> = BTreeSet::new();
        for ev in events {
            if !matches!(
                ev,
                TraceEvent::StageStart { .. }
                    | TraceEvent::StageHandoff { .. }
                    | TraceEvent::ReshuffleSkipped { .. }
            ) {
                r.t_end = r.t_end.max(ev.time());
            }
            match *ev {
                TraceEvent::MapStart { node, .. } => {
                    r.map_attempts += 1;
                    nodes.insert(node);
                }
                TraceEvent::MapFinish {
                    node,
                    cpu,
                    output_bytes,
                    spill_bytes,
                    ..
                } => {
                    r.map_tasks += 1;
                    r.map_cpu += cpu;
                    r.map_output_bytes += output_bytes;
                    r.map_spill_bytes += spill_bytes;
                    nodes.insert(node);
                }
                TraceEvent::Shuffle {
                    from_node, bytes, ..
                } => {
                    r.shuffle_transfers += 1;
                    r.shuffle_bytes += bytes;
                    nodes.insert(from_node);
                }
                TraceEvent::NodeCombine {
                    node,
                    bytes_in,
                    bytes_out,
                    ..
                } => {
                    r.node_combine_flushes += 1;
                    r.node_combine_staged += bytes_in;
                    r.node_combine_flushed += bytes_out;
                    nodes.insert(node);
                }
                TraceEvent::Io {
                    node,
                    cat,
                    read,
                    written,
                    seeks,
                    recovery,
                    ..
                } => {
                    nodes.insert(node);
                    let op = IoOp {
                        read,
                        written,
                        seeks,
                    };
                    if recovery {
                        r.recovery.record(cat, op);
                    } else {
                        r.first_pass.record(cat, op);
                        if written > 0
                            && matches!(cat, IoCategory::MapSpill | IoCategory::ReduceSpill)
                        {
                            let bucket = (63 - written.leading_zeros()) as usize;
                            r.spill_hist[bucket] += 1;
                        }
                    }
                }
                TraceEvent::Span { t0, t, node, kind } => {
                    nodes.insert(node);
                    let i = span_index(kind);
                    r.span_time[i] += t.saturating_sub(t0);
                    r.span_count[i] += 1;
                }
                TraceEvent::Fault { .. } => r.faults += 1,
                TraceEvent::Retry { .. } => r.retries += 1,
                TraceEvent::ReduceStart { node, .. } => {
                    nodes.insert(node);
                }
                TraceEvent::ReduceFinish { node, .. } => {
                    r.reduce_tasks += 1;
                    nodes.insert(node);
                }
                TraceEvent::BatchSeal { .. } => r.batch_seals += 1,
                TraceEvent::Checkpoint { bytes, .. } => {
                    r.checkpoints += 1;
                    r.checkpoint_bytes += bytes;
                }
                TraceEvent::Admission {
                    offered,
                    absorbed,
                    evictions,
                    rejected,
                    ..
                } => {
                    r.admission_reducers += 1;
                    r.admission_offered += offered;
                    r.admission_absorbed += absorbed;
                    r.admission_evictions += evictions;
                    r.admission_rejected += rejected;
                }
                TraceEvent::Poison { .. } => r.poisons += 1,
                // Serving-layer events carry scheduler rounds, not virtual
                // µs — they label multi-tenant traces but contribute
                // nothing to a single job's phase rollup.
                TraceEvent::ServeJob { .. }
                | TraceEvent::WaveGrant { .. }
                | TraceEvent::DlqReplay { .. } => {}
                TraceEvent::StageStart {
                    stage,
                    records,
                    bytes,
                    ..
                } => {
                    r.stages += 1;
                    let i = stage_row(&mut r.stage_rows, stage);
                    r.stage_rows[i].records_in = records;
                    r.stage_rows[i].bytes_in = bytes;
                }
                TraceEvent::StageHandoff {
                    stage,
                    records,
                    bytes,
                    reshuffled,
                    ..
                } => {
                    if reshuffled {
                        r.stage_reshuffles += 1;
                    }
                    let i = stage_row(&mut r.stage_rows, stage);
                    r.stage_rows[i].records_out = records;
                    r.stage_rows[i].bytes_out = bytes;
                    r.stage_rows[i].reshuffled = reshuffled;
                }
                TraceEvent::ReshuffleSkipped {
                    stage, bytes_saved, ..
                } => {
                    // Counted here, not from `stage_handoff` flags: a
                    // chain started from a resident dataset (`run_from`)
                    // can skip its *first* stage's shuffle, and that
                    // handoff has no predecessor stage to emit an event.
                    r.stage_skips += 1;
                    r.reshuffle_bytes_saved += bytes_saved;
                    let i = stage_row(&mut r.stage_rows, stage);
                    r.stage_rows[i].bytes_saved = bytes_saved;
                }
            }
        }
        r.nodes = nodes.len() as u32;
        r
    }

    /// Busy time for one span kind (µs).
    pub fn span_time_of(&self, kind: SpanKind) -> u64 {
        self.span_time[span_index(kind)]
    }

    /// Number of closed spans for one kind. `Merge` counts the
    /// background merge passes the λ_F term prices.
    pub fn span_count_of(&self, kind: SpanKind) -> u64 {
        self.span_count[span_index(kind)]
    }

    /// First-pass plus recovery I/O combined (what the device actually
    /// served).
    pub fn total_io(&self) -> IoStats {
        let mut s = self.first_pass.clone();
        s.merge(&self.recovery);
        s
    }

    /// Multi-line human-readable report (`opa trace --format summary`).
    pub fn render(&self) -> String {
        use opa_common::units::ByteSize;
        let mut out = String::new();
        out.push_str(&format!(
            "nodes {}  virtual end {:.3}s\n",
            self.nodes,
            self.t_end as f64 / 1e6
        ));
        out.push_str(&format!(
            "map: {} tasks ({} attempts), cpu {:.3}s, output {}, spills {}\n",
            self.map_tasks,
            self.map_attempts,
            self.map_cpu as f64 / 1e6,
            ByteSize(self.map_output_bytes),
            ByteSize(self.map_spill_bytes),
        ));
        out.push_str(&format!(
            "shuffle: {} transfers, {}\n",
            self.shuffle_transfers,
            ByteSize(self.shuffle_bytes)
        ));
        if self.node_combine_flushes > 0 {
            let ratio = if self.node_combine_staged == 0 {
                1.0
            } else {
                self.node_combine_flushed as f64 / self.node_combine_staged as f64
            };
            out.push_str(&format!(
                "node-combine: {} flushes, staged {} -> shipped {} (ratio {:.3})\n",
                self.node_combine_flushes,
                ByteSize(self.node_combine_staged),
                ByteSize(self.node_combine_flushed),
                ratio
            ));
        }
        out.push_str(&format!(
            "reduce: {} tasks, {} merge passes\n",
            self.reduce_tasks,
            self.span_count_of(SpanKind::Merge)
        ));
        for (label, kind) in [
            ("map", SpanKind::Map),
            ("shuffle", SpanKind::Shuffle),
            ("merge", SpanKind::Merge),
            ("reduce", SpanKind::Reduce),
        ] {
            out.push_str(&format!(
                "busy[{label}] {:.3}s over {} spans\n",
                self.span_time_of(kind) as f64 / 1e6,
                self.span_count_of(kind)
            ));
        }
        out.push_str("first-pass ");
        out.push_str(&self.first_pass.to_string());
        out.push('\n');
        if self.recovery.total_bytes() > 0 || self.recovery.total_seeks() > 0 {
            out.push_str(&format!(
                "recovery re-replay: {} in {} requests (excluded above)\n",
                ByteSize(self.recovery.total_bytes()),
                self.recovery.total_seeks()
            ));
        }
        if self.faults > 0 || self.retries > 0 {
            out.push_str(&format!(
                "faults: {} fired, {} retries\n",
                self.faults, self.retries
            ));
        }
        if self.poisons > 0 {
            out.push_str(&format!(
                "poison: {} records quarantined to the DLQ\n",
                self.poisons
            ));
        }
        if self.admission_reducers > 0 {
            let gamma = if self.admission_offered == 0 {
                1.0
            } else {
                self.admission_absorbed as f64 / self.admission_offered as f64
            };
            out.push_str(&format!(
                "admission: {} reducers, offered {}, absorbed {} (γ {:.4}), {} evictions, {} rejected\n",
                self.admission_reducers,
                self.admission_offered,
                self.admission_absorbed,
                gamma,
                self.admission_evictions,
                self.admission_rejected
            ));
        }
        if self.batch_seals > 0 {
            out.push_str(&format!(
                "stream: {} seals, {} checkpoints ({})\n",
                self.batch_seals,
                self.checkpoints,
                ByteSize(self.checkpoint_bytes)
            ));
        }
        if self.stages > 0 {
            out.push_str(&format!(
                "dataflow: {} stages, {} reshuffled, {} skipped ({} saved)\n",
                self.stages,
                self.stage_reshuffles,
                self.stage_skips,
                ByteSize(self.reshuffle_bytes_saved)
            ));
            for row in &self.stage_rows {
                let path = if row.bytes_saved > 0 {
                    "skip"
                } else if row.reshuffled {
                    "reshuffle"
                } else if row.records_out > 0 {
                    "handoff"
                } else {
                    "final"
                };
                out.push_str(&format!(
                    "  stage {}: in {} recs ({}), out {} recs ({}), {}\n",
                    row.stage,
                    row.records_in,
                    ByteSize(row.bytes_in),
                    row.records_out,
                    ByteSize(row.bytes_out),
                    path
                ));
            }
        }
        let populated: Vec<String> = self
            .spill_hist
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| format!("2^{i}:{n}"))
            .collect();
        if !populated.is_empty() {
            out.push_str(&format!("spill-size histogram {}\n", populated.join(" ")));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rollup_separates_recovery_from_first_pass() {
        let events = vec![
            TraceEvent::Io {
                t0: 0,
                t: 10,
                node: 0,
                cat: IoCategory::ReduceSpill,
                read: 0,
                written: 1024,
                seeks: 1,
                recovery: false,
            },
            TraceEvent::Io {
                t0: 10,
                t: 20,
                node: 1,
                cat: IoCategory::ReduceSpill,
                read: 0,
                written: 1024,
                seeks: 1,
                recovery: true,
            },
        ];
        let r = Rollup::from_events(&events);
        assert_eq!(r.first_pass.bytes(IoCategory::ReduceSpill), 1024);
        assert_eq!(r.recovery.bytes(IoCategory::ReduceSpill), 1024);
        assert_eq!(r.total_io().bytes(IoCategory::ReduceSpill), 2048);
        assert_eq!(r.nodes, 2);
        assert_eq!(r.t_end, 20);
        // 1024 = 2^10; only the first-pass write lands in the histogram.
        assert_eq!(r.spill_hist[10], 1);
    }

    #[test]
    fn rollup_counts_phases_and_streams() {
        let events = vec![
            TraceEvent::MapStart {
                t: 0,
                chunk: 0,
                attempt: 0,
                node: 0,
            },
            TraceEvent::MapFinish {
                t0: 0,
                t: 100,
                chunk: 0,
                node: 0,
                cpu: 50,
                output_bytes: 10,
                spill_bytes: 4,
            },
            TraceEvent::Span {
                t0: 0,
                t: 100,
                node: 0,
                kind: SpanKind::Map,
            },
            TraceEvent::Span {
                t0: 100,
                t: 150,
                node: 0,
                kind: SpanKind::Merge,
            },
            TraceEvent::BatchSeal {
                t: 200,
                batch: 1,
                batches: 2,
                records: 5,
            },
            TraceEvent::Checkpoint {
                t: 201,
                batch: 1,
                bytes: 77,
            },
        ];
        let r = Rollup::from_events(&events);
        assert_eq!(r.map_tasks, 1);
        assert_eq!(r.map_attempts, 1);
        assert_eq!(r.map_output_bytes, 10);
        assert_eq!(r.span_time_of(SpanKind::Map), 100);
        assert_eq!(r.span_count_of(SpanKind::Merge), 1);
        assert_eq!(r.batch_seals, 1);
        assert_eq!(r.checkpoint_bytes, 77);
        let text = r.render();
        assert!(text.contains("merge passes"), "{text}");
        assert!(text.contains("stream: 1 seals"), "{text}");
    }

    #[test]
    fn rollup_folds_dataflow_stage_events() {
        let events = vec![
            TraceEvent::StageStart {
                t: 0,
                stage: 0,
                records: 1000,
                bytes: 96_000,
            },
            TraceEvent::StageHandoff {
                t: 0,
                stage: 0,
                records: 40,
                bytes: 800,
                reshuffled: true,
            },
            TraceEvent::StageStart {
                t: 1,
                stage: 1,
                records: 40,
                bytes: 800,
            },
            TraceEvent::ReshuffleSkipped {
                t: 1,
                stage: 1,
                bytes_saved: 800,
            },
            TraceEvent::StageHandoff {
                t: 1,
                stage: 1,
                records: 40,
                bytes: 640,
                reshuffled: false,
            },
        ];
        let r = Rollup::from_events(&events);
        assert_eq!(r.stages, 2);
        assert_eq!(r.stage_reshuffles, 1);
        assert_eq!(r.stage_skips, 1);
        assert_eq!(r.reshuffle_bytes_saved, 800);
        assert_eq!(r.stage_rows.len(), 2);
        assert_eq!(r.stage_rows[0].records_in, 1000);
        assert!(r.stage_rows[0].reshuffled);
        assert_eq!(r.stage_rows[1].bytes_saved, 800);
        // Stage ordinals must not pollute the virtual-time makespan.
        assert_eq!(r.t_end, 0);
        let text = r.render();
        assert!(text.contains("dataflow: 2 stages"), "{text}");
        assert!(text.contains("stage 1"), "{text}");
    }
}
