//! Chrome trace-event export (Perfetto / `chrome://tracing`).
//!
//! Renders a trace as the JSON object format of the Trace Event spec:
//! each simulated node becomes a process (`pid`), with one thread lane
//! per operation class (map/shuffle/merge/reduce/disk), so loading the
//! file in <https://ui.perfetto.dev> reproduces the paper's Fig 2/Fig 7
//! task-timeline plots directly from a run. Virtual timestamps are
//! already microseconds — the spec's `ts` unit — so no scaling happens.
//!
//! Fault decisions, retries, batch seals and checkpoints appear as
//! instant events on a synthetic `control` process.

use crate::event::{fault_kind_label, io_category_label, SpanKind, TraceEvent};
use std::collections::BTreeSet;

/// Thread-lane ids within each node process.
const LANE_MAP: u32 = 0;
const LANE_SHUFFLE: u32 = 1;
const LANE_MERGE: u32 = 2;
const LANE_REDUCE: u32 = 3;
const LANE_DISK: u32 = 4;

fn lane(kind: SpanKind) -> u32 {
    match kind {
        SpanKind::Map => LANE_MAP,
        SpanKind::Shuffle => LANE_SHUFFLE,
        SpanKind::Merge => LANE_MERGE,
        SpanKind::Reduce => LANE_REDUCE,
    }
}

/// Renders `events` in Chrome trace-event JSON object format.
pub fn to_chrome(events: &[TraceEvent]) -> String {
    // Pass 1: which nodes exist? (Names every pid, and places the
    // control track past the last node.)
    let mut nodes: BTreeSet<u32> = BTreeSet::new();
    for ev in events {
        match *ev {
            TraceEvent::MapStart { node, .. }
            | TraceEvent::MapFinish { node, .. }
            | TraceEvent::Io { node, .. }
            | TraceEvent::Span { node, .. }
            | TraceEvent::ReduceStart { node, .. }
            | TraceEvent::ReduceFinish { node, .. } => {
                nodes.insert(node);
            }
            TraceEvent::Shuffle { from_node, .. } => {
                nodes.insert(from_node);
            }
            TraceEvent::NodeCombine { node, .. } => {
                nodes.insert(node);
            }
            _ => {}
        }
    }
    let control_pid = nodes.iter().next_back().map_or(0, |n| n + 1);

    let mut out = String::with_capacity(events.len() * 128 + 1024);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut push = |s: String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push('\n');
        out.push_str(&s);
    };

    for &node in &nodes {
        push(
            format!(
                "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{node},\"tid\":0,\"args\":{{\"name\":\"node {node}\"}}}}"
            ),
            &mut first,
        );
        for (tid, name) in [
            (LANE_MAP, "map"),
            (LANE_SHUFFLE, "shuffle"),
            (LANE_MERGE, "merge"),
            (LANE_REDUCE, "reduce"),
            (LANE_DISK, "disk"),
        ] {
            push(
                format!(
                    "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{node},\"tid\":{tid},\"args\":{{\"name\":\"{name}\"}}}}"
                ),
                &mut first,
            );
        }
    }
    push(
        format!(
            "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{control_pid},\"tid\":0,\"args\":{{\"name\":\"control\"}}}}"
        ),
        &mut first,
    );

    for ev in events {
        match *ev {
            TraceEvent::Span { t0, t, node, kind } => push(
                format!(
                    "{{\"ph\":\"X\",\"name\":\"{}\",\"pid\":{node},\"tid\":{},\"ts\":{t0},\"dur\":{}}}",
                    kind.label(),
                    lane(kind),
                    t.saturating_sub(t0)
                ),
                &mut first,
            ),
            TraceEvent::Io {
                t0,
                t,
                node,
                cat,
                read,
                written,
                seeks,
                recovery,
            } => push(
                format!(
                    "{{\"ph\":\"X\",\"name\":\"{}\",\"pid\":{node},\"tid\":{LANE_DISK},\"ts\":{t0},\"dur\":{},\"args\":{{\"read\":{read},\"written\":{written},\"seeks\":{seeks},\"recovery\":{}}}}}",
                    io_category_label(cat),
                    t.saturating_sub(t0),
                    u8::from(recovery)
                ),
                &mut first,
            ),
            TraceEvent::MapStart {
                t,
                chunk,
                attempt,
                node,
            } => push(
                format!(
                    "{{\"ph\":\"i\",\"name\":\"map_start c{chunk}\",\"pid\":{node},\"tid\":{LANE_MAP},\"ts\":{t},\"s\":\"t\",\"args\":{{\"chunk\":{chunk},\"attempt\":{attempt}}}}}"
                ),
                &mut first,
            ),
            TraceEvent::MapFinish {
                t,
                chunk,
                node,
                output_bytes,
                spill_bytes,
                ..
            } => push(
                format!(
                    "{{\"ph\":\"i\",\"name\":\"map_finish c{chunk}\",\"pid\":{node},\"tid\":{LANE_MAP},\"ts\":{t},\"s\":\"t\",\"args\":{{\"output_bytes\":{output_bytes},\"spill_bytes\":{spill_bytes}}}}}"
                ),
                &mut first,
            ),
            TraceEvent::Shuffle {
                t0,
                t,
                from_node,
                reducer,
                bytes,
            } => push(
                format!(
                    "{{\"ph\":\"X\",\"name\":\"to r{reducer}\",\"pid\":{from_node},\"tid\":{LANE_SHUFFLE},\"ts\":{t0},\"dur\":{},\"args\":{{\"bytes\":{bytes}}}}}",
                    t.saturating_sub(t0)
                ),
                &mut first,
            ),
            TraceEvent::NodeCombine {
                t0,
                t,
                node,
                bytes_in,
                bytes_out,
                keys,
            } => push(
                format!(
                    "{{\"ph\":\"X\",\"name\":\"node_combine\",\"pid\":{node},\"tid\":{LANE_SHUFFLE},\"ts\":{t0},\"dur\":{},\"args\":{{\"bytes_in\":{bytes_in},\"bytes_out\":{bytes_out},\"keys\":{keys}}}}}",
                    t.saturating_sub(t0)
                ),
                &mut first,
            ),
            TraceEvent::ReduceStart { t, reducer, node } => push(
                format!(
                    "{{\"ph\":\"i\",\"name\":\"reduce_start r{reducer}\",\"pid\":{node},\"tid\":{LANE_REDUCE},\"ts\":{t},\"s\":\"t\"}}"
                ),
                &mut first,
            ),
            TraceEvent::ReduceFinish { t, reducer, node } => push(
                format!(
                    "{{\"ph\":\"i\",\"name\":\"reduce_finish r{reducer}\",\"pid\":{node},\"tid\":{LANE_REDUCE},\"ts\":{t},\"s\":\"t\"}}"
                ),
                &mut first,
            ),
            TraceEvent::Fault {
                t,
                kind,
                target,
                attempt,
            } => push(
                format!(
                    "{{\"ph\":\"i\",\"name\":\"fault {}\",\"pid\":{control_pid},\"tid\":0,\"ts\":{t},\"s\":\"g\",\"args\":{{\"target\":{target},\"attempt\":{attempt}}}}}",
                    fault_kind_label(kind)
                ),
                &mut first,
            ),
            TraceEvent::Retry {
                t,
                kind,
                target,
                attempt,
            } => push(
                format!(
                    "{{\"ph\":\"i\",\"name\":\"retry {}\",\"pid\":{control_pid},\"tid\":0,\"ts\":{t},\"s\":\"g\",\"args\":{{\"target\":{target},\"attempt\":{attempt}}}}}",
                    fault_kind_label(kind)
                ),
                &mut first,
            ),
            TraceEvent::BatchSeal {
                t,
                batch,
                batches,
                records,
            } => push(
                format!(
                    "{{\"ph\":\"i\",\"name\":\"seal {batch}/{batches}\",\"pid\":{control_pid},\"tid\":0,\"ts\":{t},\"s\":\"g\",\"args\":{{\"records\":{records}}}}}"
                ),
                &mut first,
            ),
            TraceEvent::Checkpoint { t, batch, bytes } => push(
                format!(
                    "{{\"ph\":\"i\",\"name\":\"checkpoint {batch}\",\"pid\":{control_pid},\"tid\":0,\"ts\":{t},\"s\":\"g\",\"args\":{{\"bytes\":{bytes}}}}}"
                ),
                &mut first,
            ),
            TraceEvent::Admission {
                t,
                reducer,
                offered,
                absorbed,
                evictions,
                rejected,
            } => push(
                format!(
                    "{{\"ph\":\"i\",\"name\":\"admission r{reducer}\",\"pid\":{control_pid},\"tid\":0,\"ts\":{t},\"s\":\"g\",\"args\":{{\"offered\":{offered},\"absorbed\":{absorbed},\"evictions\":{evictions},\"rejected\":{rejected}}}}}"
                ),
                &mut first,
            ),
            TraceEvent::Poison {
                t,
                chunk,
                offset,
                attempt,
            } => push(
                format!(
                    "{{\"ph\":\"i\",\"name\":\"poison c{chunk}\",\"pid\":{control_pid},\"tid\":0,\"ts\":{t},\"s\":\"g\",\"args\":{{\"offset\":{offset},\"attempt\":{attempt}}}}}"
                ),
                &mut first,
            ),
            // Serving-layer and dataflow-level events use ordinal
            // timestamps (scheduler rounds / stage indices) from a
            // different clock domain than the engine's virtual µs; they
            // are omitted from the per-job Chrome timeline.
            TraceEvent::ServeJob { .. }
            | TraceEvent::WaveGrant { .. }
            | TraceEvent::DlqReplay { .. }
            | TraceEvent::StageStart { .. }
            | TraceEvent::StageHandoff { .. }
            | TraceEvent::ReshuffleSkipped { .. } => {}
        }
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonValue;
    use opa_common::fault::FaultKind;
    use opa_simio::IoCategory;

    #[test]
    fn chrome_output_is_valid_json_with_expected_shape() {
        let events = vec![
            TraceEvent::Span {
                t0: 5,
                t: 25,
                node: 1,
                kind: SpanKind::Map,
            },
            TraceEvent::Io {
                t0: 25,
                t: 30,
                node: 1,
                cat: IoCategory::MapInput,
                read: 64,
                written: 0,
                seeks: 1,
                recovery: false,
            },
            TraceEvent::Fault {
                t: 7,
                kind: FaultKind::MapFailure,
                target: 0,
                attempt: 0,
            },
        ];
        let text = to_chrome(&events);
        let v = JsonValue::parse(&text).expect("valid JSON");
        let arr = match v.get("traceEvents") {
            Some(JsonValue::Arr(items)) => items,
            other => panic!("traceEvents missing: {other:?}"),
        };
        // 6 metadata rows for node 1, 1 for control, 3 events.
        assert_eq!(arr.len(), 10, "{text}");
        let span = arr
            .iter()
            .find(|e| e.str_field("ph") == Ok("X") && e.str_field("name") == Ok("map"))
            .expect("map span present");
        assert_eq!(span.u64_field("ts").unwrap(), 5);
        assert_eq!(span.u64_field("dur").unwrap(), 20);
        assert_eq!(span.u64_field("pid").unwrap(), 1);
        // Control process sits past the last node.
        let fault = arr
            .iter()
            .find(|e| matches!(e.str_field("name"), Ok(n) if n.starts_with("fault")))
            .expect("fault instant present");
        assert_eq!(fault.u64_field("pid").unwrap(), 2);
        assert_eq!(fault.str_field("ph").unwrap(), "i");
    }
}
