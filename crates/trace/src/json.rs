//! A minimal JSON reader used by the trace decoder and the Chrome-export
//! tests.
//!
//! The workspace's `serde` shim is a deliberate no-op (derives expand to
//! nothing), so trace records are hand-serialized with fixed field order
//! and hand-parsed here. The grammar supported is the full JSON value
//! grammar; numbers are kept as `i64`/`u64` when integral (trace records
//! only ever contain integers, strings and booleans).

use opa_common::{Error, Result};

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number. Integral values round-trip exactly through `f64` up
    /// to 2^53, far beyond any trace field in practice.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses `text` as a single JSON value (trailing whitespace
    /// allowed, trailing garbage rejected).
    pub fn parse(text: &str) -> Result<JsonValue> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(Error::job(format!(
                "trailing characters at byte {} in JSON input",
                p.pos
            )));
        }
        Ok(v)
    }

    /// Looks up `key` in an object value.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Fetches a required string field from an object.
    pub fn str_field(&self, key: &str) -> Result<&str> {
        match self.get(key) {
            Some(JsonValue::Str(s)) => Ok(s),
            Some(_) => Err(Error::job(format!("field '{key}' is not a string"))),
            None => Err(Error::job(format!("missing field '{key}'"))),
        }
    }

    /// Fetches a required non-negative integer field from an object.
    pub fn u64_field(&self, key: &str) -> Result<u64> {
        match self.get(key) {
            Some(JsonValue::Num(n)) if *n >= 0.0 && n.fract() == 0.0 => Ok(*n as u64),
            Some(_) => Err(Error::job(format!(
                "field '{key}' is not a non-negative integer"
            ))),
            None => Err(Error::job(format!("missing field '{key}'"))),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::job(format!(
                "expected '{}' at byte {} in JSON input",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<JsonValue> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error::job(format!(
                "unexpected character at byte {} in JSON input",
                self.pos
            ))),
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::job(format!(
                "invalid literal at byte {} in JSON input",
                self.pos
            )))
        }
    }

    fn object(&mut self) -> Result<JsonValue> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => {
                    return Err(Error::job(format!(
                        "expected ',' or '}}' at byte {} in JSON input",
                        self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => {
                    return Err(Error::job(format!(
                        "expected ',' or ']' at byte {} in JSON input",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::job("truncated \\u escape".to_string()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::job("bad \\u escape".to_string()))?,
                                16,
                            )
                            .map_err(|_| Error::job("bad \\u escape".to_string()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::job("bad \\u escape".to_string()))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::job("bad escape in JSON string".to_string())),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::job("invalid UTF-8 in JSON string".to_string()))?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
                None => return Err(Error::job("unterminated JSON string".to_string())),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| Error::job(format!("invalid number '{text}' in JSON input")))
    }
}

/// Escapes `s` for embedding inside a JSON string literal (quotes not
/// included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_values() {
        let v = JsonValue::parse(r#"{"a":1,"b":[true,null,"x\ny"],"c":{"d":-2.5},"e":"A"}"#)
            .expect("parse");
        assert_eq!(v.u64_field("a").unwrap(), 1);
        assert_eq!(
            v.get("b"),
            Some(&JsonValue::Arr(vec![
                JsonValue::Bool(true),
                JsonValue::Null,
                JsonValue::Str("x\ny".into()),
            ]))
        );
        assert_eq!(v.get("c").unwrap().get("d"), Some(&JsonValue::Num(-2.5)));
        assert_eq!(v.str_field("e").unwrap(), "A");
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_fields() {
        assert!(JsonValue::parse("{} x").is_err());
        assert!(JsonValue::parse("{").is_err());
        let v = JsonValue::parse(r#"{"a":-1,"b":1.5,"c":"s"}"#).unwrap();
        assert!(v.u64_field("a").is_err());
        assert!(v.u64_field("b").is_err());
        assert!(v.u64_field("missing").is_err());
        assert!(v.str_field("a").is_err());
    }

    #[test]
    fn escape_roundtrips_through_parse() {
        let nasty = "line\nquote\" slash\\ tab\t ctrl\u{1} unicode ü";
        let wrapped = format!("{{\"k\":\"{}\"}}", escape(nasty));
        let v = JsonValue::parse(&wrapped).expect("parse");
        assert_eq!(v.str_field("k").unwrap(), nasty);
    }
}
