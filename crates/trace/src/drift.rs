//! The model-drift checker: Prop. 3.1/3.2 predictions vs. measured
//! rollups.
//!
//! The paper's analytical model (§3) predicts per-node I/O bytes
//! (`U_1..U_5`, Eq. 1) and request counts (`S`, Eq. 3) from the
//! (C, F, R) configuration alone. The engine measures the same
//! quantities exactly. This module closes the loop: given the cluster
//! configuration and a [`Rollup`] from a traced run, it derives the
//! measured workload parameters (`D`, `K_m`, `K_r`), evaluates the
//! model, and reports per-term relative error — turning the paper's
//! propositions into a continuously validated invariant
//! (`tests/model_drift.rs` pins sort-merge sessionization at ≤ 10%).
//!
//! The *measured* side uses first-pass I/O only ([`Rollup::first_pass`]):
//! recovery re-replay traffic under fault injection re-does work the
//! model already priced once, so it is excluded — the measured bytes here
//! are authoritative for model comparison.

use crate::rollup::Rollup;
use opa_common::{CombineScope, Error, HardwareSpec, Result, SystemSettings, WorkloadSpec};
use opa_model::io_model::{CombineModel, ModelInput};
use opa_simio::IoCategory;

/// One predicted-vs-measured quantity.
#[derive(Debug, Clone, Copy)]
pub struct DriftTerm {
    /// Term name (`u1`…`u5`, `total`, `requests`).
    pub name: &'static str,
    /// What the term measures, for human-readable reports.
    pub what: &'static str,
    /// Model prediction (per-node).
    pub predicted: f64,
    /// Engine measurement (per-node).
    pub measured: f64,
}

impl DriftTerm {
    /// Relative error `|predicted − measured| / measured`. Terms where
    /// both sides are below one byte/request (e.g. `U_2` when map output
    /// fits its buffer on both sides) report zero rather than dividing
    /// by zero.
    pub fn rel_err(&self) -> f64 {
        if self.predicted.abs() < 1.0 && self.measured.abs() < 1.0 {
            return 0.0;
        }
        (self.predicted - self.measured).abs() / self.measured.abs().max(1.0)
    }
}

/// Workload parameters recovered from a measured run.
#[derive(Debug, Clone, Copy)]
pub struct MeasuredWorkload {
    /// `D` — job input bytes (cluster-wide).
    pub input_bytes: u64,
    /// `K_m` — map output bytes per input byte.
    pub km: f64,
    /// `K_r` — reduce output bytes per map output byte.
    pub kr: f64,
}

impl MeasuredWorkload {
    /// Derives (`D`, `K_m`, `K_r`) from a rollup: `D` from first-pass
    /// map-input reads, `K_m` from committed map-task output, `K_r`
    /// from first-pass job-output writes.
    pub fn from_rollup(r: &Rollup) -> Result<MeasuredWorkload> {
        let d = r.first_pass.read_bytes(IoCategory::MapInput);
        if d == 0 {
            return Err(Error::job(
                "trace has no map-input reads; cannot derive workload parameters".to_string(),
            ));
        }
        let km = r.map_output_bytes as f64 / d as f64;
        let out = r.first_pass.written_bytes(IoCategory::ReduceOutput);
        let kr = if r.map_output_bytes > 0 {
            out as f64 / r.map_output_bytes as f64
        } else {
            0.0
        };
        Ok(MeasuredWorkload {
            input_bytes: d,
            km,
            kr,
        })
    }
}

/// The full drift report for one run.
#[derive(Debug, Clone)]
pub struct DriftReport {
    /// The workload parameters the model was evaluated with.
    pub workload: MeasuredWorkload,
    /// Per-category byte terms `u1`…`u5` (Prop. 3.1), per node.
    pub bytes: Vec<DriftTerm>,
    /// Total bytes `U` (Prop. 3.1), per node.
    pub bytes_total: DriftTerm,
    /// Request count `S` (Prop. 3.2), per node.
    pub requests: DriftTerm,
    /// Measured-occupancy coverage γ vs. the value implied by the
    /// admission bookkeeping identity `absorbed + rejected = offered`
    /// (`None` unless the trace carries admission events). Any relative
    /// error here means the trace's admission counters are corrupt.
    pub admission_gamma: Option<DriftTerm>,
    /// Combiner-ratio term: the [`CombineModel`]'s predicted per-node
    /// shuffle bytes vs. the bytes the trace actually booked on the
    /// network (`None` unless a combine model was supplied via
    /// [`check_with_combine`]).
    pub combine: Option<DriftTerm>,
}

impl DriftReport {
    /// Largest relative error across the Prop. 3.1 byte terms whose
    /// measured magnitude is at least `min_share` of the measured total
    /// (tiny terms drown in integer-rounding noise).
    pub fn max_bytes_rel_err(&self, min_share: f64) -> f64 {
        let floor = self.bytes_total.measured * min_share;
        self.bytes
            .iter()
            .filter(|t| t.measured >= floor)
            .map(|t| t.rel_err())
            .fold(self.bytes_total.rel_err(), f64::max)
    }

    /// Multi-line human-readable report (`opa run --drift`,
    /// `opa trace --format summary`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "measured workload: D={} bytes, Km={:.4}, Kr={:.4}\n",
            self.workload.input_bytes, self.workload.km, self.workload.kr
        ));
        out.push_str("per-node bytes (Prop 3.1):\n");
        for t in self.bytes.iter().chain(std::iter::once(&self.bytes_total)) {
            out.push_str(&format!(
                "  {:8} {:26} predicted {:>14.0}  measured {:>14.0}  rel err {:>6.2}%\n",
                t.name,
                t.what,
                t.predicted,
                t.measured,
                t.rel_err() * 100.0
            ));
        }
        out.push_str(&format!(
            "per-node requests (Prop 3.2):\n  {:8} {:26} predicted {:>14.0}  measured {:>14.0}  rel err {:>6.2}%\n",
            self.requests.name,
            self.requests.what,
            self.requests.predicted,
            self.requests.measured,
            self.requests.rel_err() * 100.0
        ));
        if let Some(g) = &self.admission_gamma {
            out.push_str(&format!(
                "admission coverage:\n  {:8} {:26} implied   {:>14.4}  measured {:>14.4}  rel err {:>6.2}%\n",
                g.name,
                g.what,
                g.predicted,
                g.measured,
                g.rel_err() * 100.0
            ));
        }
        if let Some(c) = &self.combine {
            out.push_str(&format!(
                "combiner ratio:\n  {:8} {:26} predicted {:>14.0}  measured {:>14.0}  rel err {:>6.2}%\n",
                c.name,
                c.what,
                c.predicted,
                c.measured,
                c.rel_err() * 100.0
            ));
        }
        out
    }
}

/// Evaluates the §3 model for the configuration that produced `rollup`
/// and compares every term against the measurement.
///
/// The measured per-node values divide cluster-wide first-pass totals by
/// `hardware.nodes` (the same `N` the model predicts per-node values
/// for). Term mapping, as documented in `OBSERVABILITY.md`:
///
/// | term | model (per node)   | measured (first pass, per node)     |
/// |------|--------------------|-------------------------------------|
/// | `u1` | `D/N`              | map-input bytes **read**            |
/// | `u2` | `2·λ_F` map side   | map-spill bytes read + written      |
/// | `u3` | `D·K_m/N`          | map-output bytes **written**        |
/// | `u4` | `2·R·λ_F` reduce   | reduce-spill bytes read + written   |
/// | `u5` | `D·K_m·K_r/N`      | job-output bytes **written**        |
///
/// (`u3` counts writes only: re-reading map output to feed second-wave
/// reducers is a scheduling artifact the model folds into shuffle, not a
/// `U_3` term.)
pub fn check(
    system: SystemSettings,
    hardware: HardwareSpec,
    rollup: &Rollup,
) -> Result<DriftReport> {
    check_with_combine(system, hardware, rollup, None)
}

/// [`check`], plus the combiner-ratio term: when the caller knows the
/// job's key distribution (a [`CombineModel`]) and the combine scope it
/// ran under, the report also compares the model's predicted per-node
/// shuffle bytes against the network bytes the trace booked.
pub fn check_with_combine(
    system: SystemSettings,
    hardware: HardwareSpec,
    rollup: &Rollup,
    combine_model: Option<(CombineScope, CombineModel)>,
) -> Result<DriftReport> {
    let workload = MeasuredWorkload::from_rollup(rollup)?;
    let model = ModelInput::new(
        system,
        WorkloadSpec::new(workload.input_bytes, workload.km, workload.kr),
        hardware,
    )?;
    let predicted = model.io_bytes();
    let n = hardware.nodes as f64;
    let per_node = |v: u64| v as f64 / n;
    let fp = &rollup.first_pass;

    let bytes = vec![
        DriftTerm {
            name: "u1",
            what: "map input read",
            predicted: predicted.u1,
            measured: per_node(fp.read_bytes(IoCategory::MapInput)),
        },
        DriftTerm {
            name: "u2",
            what: "map internal spills",
            predicted: predicted.u2,
            measured: per_node(fp.bytes(IoCategory::MapSpill)),
        },
        DriftTerm {
            name: "u3",
            what: "map output written",
            predicted: predicted.u3,
            measured: per_node(fp.written_bytes(IoCategory::MapOutput)),
        },
        DriftTerm {
            name: "u4",
            what: "reduce internal spills",
            predicted: predicted.u4,
            measured: per_node(fp.bytes(IoCategory::ReduceSpill)),
        },
        DriftTerm {
            name: "u5",
            what: "job output written",
            predicted: predicted.u5,
            measured: per_node(fp.written_bytes(IoCategory::ReduceOutput)),
        },
    ];
    let bytes_total = DriftTerm {
        name: "total",
        what: "U = u1+u2+u3+u4+u5",
        predicted: predicted.total(),
        measured: bytes.iter().map(|t| t.measured).sum(),
    };
    let requests = DriftTerm {
        name: "requests",
        what: "S sequential I/O requests",
        predicted: model.io_requests(),
        measured: per_node(fp.total_seeks()),
    };
    let admission_gamma = (rollup.admission_reducers > 0).then(|| DriftTerm {
        name: "gamma",
        what: "measured occupancy",
        predicted: opa_model::gamma::measured_occupancy(
            rollup
                .admission_offered
                .saturating_sub(rollup.admission_rejected),
            rollup.admission_offered,
        ),
        measured: opa_model::gamma::measured_occupancy(
            rollup.admission_absorbed,
            rollup.admission_offered,
        ),
    });
    let combine = combine_model.map(|(scope, model)| DriftTerm {
        name: "shuffle",
        what: "post-combine shuffle bytes",
        predicted: model.shuffle_bytes(scope) / n,
        measured: per_node(rollup.shuffle_bytes),
    });
    Ok(DriftReport {
        workload,
        bytes,
        bytes_total,
        requests,
        admission_gamma,
        combine,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;

    #[test]
    fn rel_err_handles_zero_terms() {
        let zero = DriftTerm {
            name: "u2",
            what: "",
            predicted: 0.0,
            measured: 0.0,
        };
        assert_eq!(zero.rel_err(), 0.0);
        let off = DriftTerm {
            name: "u1",
            what: "",
            predicted: 110.0,
            measured: 100.0,
        };
        assert!((off.rel_err() - 0.10).abs() < 1e-12);
    }

    #[test]
    fn workload_derivation_requires_input_reads() {
        let empty = Rollup::from_events(&[]);
        assert!(MeasuredWorkload::from_rollup(&empty).is_err());
    }

    #[test]
    fn workload_derived_from_first_pass_only() {
        let events = vec![
            TraceEvent::Io {
                t0: 0,
                t: 1,
                node: 0,
                cat: IoCategory::MapInput,
                read: 1000,
                written: 0,
                seeks: 1,
                recovery: false,
            },
            // Recovery re-read must not inflate D.
            TraceEvent::Io {
                t0: 1,
                t: 2,
                node: 0,
                cat: IoCategory::MapInput,
                read: 1000,
                written: 0,
                seeks: 1,
                recovery: true,
            },
            TraceEvent::MapFinish {
                t0: 0,
                t: 3,
                chunk: 0,
                node: 0,
                cpu: 1,
                output_bytes: 500,
                spill_bytes: 0,
            },
            TraceEvent::Io {
                t0: 3,
                t: 4,
                node: 0,
                cat: IoCategory::ReduceOutput,
                read: 0,
                written: 250,
                seeks: 1,
                recovery: false,
            },
        ];
        let w = MeasuredWorkload::from_rollup(&Rollup::from_events(&events)).expect("workload");
        assert_eq!(w.input_bytes, 1000);
        assert!((w.km - 0.5).abs() < 1e-12);
        assert!((w.kr - 0.5).abs() < 1e-12);
    }
}
