//! The trace event vocabulary and its JSONL encoding.
//!
//! Every event carries virtual timestamps in **microseconds** (the
//! engine's [`opa_common::units::SimTime`] resolution). Events are
//! emitted by the *scheduling* layer only, in strict event order, so a
//! trace is bit-identical at any execution-layer thread count — the same
//! determinism contract the engine gives for
//! [`JobOutcome`](../opa_core/job/struct.JobOutcome.html)s.
//!
//! The on-disk format is JSON Lines: one event per line, fixed field
//! order, integer values only (no floats), which makes traces directly
//! diffable and safely pinnable by checksum.

use crate::json::JsonValue;
use opa_common::fault::FaultKind;
use opa_common::{Error, Result};
use opa_simio::IoCategory;

/// Timeline operation classes, mirroring the engine's task timeline
/// (`opa_core::sim::OpKind`) without depending on `opa-core`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// A map task (includes its sort).
    Map,
    /// A shuffle transfer.
    Shuffle,
    /// A background (multi-pass) merge.
    Merge,
    /// Final-merge + reduce-function work, or hash-side reduce work.
    Reduce,
}

impl SpanKind {
    /// Stable wire label.
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Map => "map",
            SpanKind::Shuffle => "shuffle",
            SpanKind::Merge => "merge",
            SpanKind::Reduce => "reduce",
        }
    }

    fn parse(s: &str) -> Result<Self> {
        Ok(match s {
            "map" => SpanKind::Map,
            "shuffle" => SpanKind::Shuffle,
            "merge" => SpanKind::Merge,
            "reduce" => SpanKind::Reduce,
            other => return Err(Error::job(format!("unknown span kind '{other}'"))),
        })
    }
}

/// Stable wire label for an I/O category (`u1`…`u5`, Table 2 order).
pub fn io_category_label(cat: IoCategory) -> &'static str {
    match cat {
        IoCategory::MapInput => "u1",
        IoCategory::MapSpill => "u2",
        IoCategory::MapOutput => "u3",
        IoCategory::ReduceSpill => "u4",
        IoCategory::ReduceOutput => "u5",
    }
}

fn parse_io_category(s: &str) -> Result<IoCategory> {
    Ok(match s {
        "u1" => IoCategory::MapInput,
        "u2" => IoCategory::MapSpill,
        "u3" => IoCategory::MapOutput,
        "u4" => IoCategory::ReduceSpill,
        "u5" => IoCategory::ReduceOutput,
        other => return Err(Error::job(format!("unknown I/O category '{other}'"))),
    })
}

/// Stable wire label for a fault kind.
pub fn fault_kind_label(kind: FaultKind) -> &'static str {
    match kind {
        FaultKind::MapFailure => "map_failure",
        FaultKind::Straggler => "straggler",
        FaultKind::ReduceFailure => "reduce_failure",
        FaultKind::SpillError => "spill_error",
        FaultKind::UdfPoison => "udf_poison",
    }
}

fn parse_fault_kind(s: &str) -> Result<FaultKind> {
    Ok(match s {
        "map_failure" => FaultKind::MapFailure,
        "straggler" => FaultKind::Straggler,
        "reduce_failure" => FaultKind::ReduceFailure,
        "spill_error" => FaultKind::SpillError,
        "udf_poison" => FaultKind::UdfPoison,
        other => return Err(Error::job(format!("unknown fault kind '{other}'"))),
    })
}

/// Lifecycle states of a job inside the `opa serve` scheduler, carried by
/// [`TraceEvent::ServeJob`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServeJobState {
    /// The job passed admission and entered the queue.
    Admitted,
    /// Rejected: its tenant already holds its concurrent-job quota and the
    /// queue policy refuses to hold more for it.
    RejectedQuota,
    /// Rejected: the server-wide queue is at capacity (backpressure).
    RejectedQueue,
    /// The job left the queue and began running on a slot.
    Started,
    /// The job completed and its outcome was stored.
    Finished,
    /// The job failed with an error (configuration or input).
    Failed,
}

impl ServeJobState {
    /// Stable wire label.
    pub fn label(self) -> &'static str {
        match self {
            ServeJobState::Admitted => "admitted",
            ServeJobState::RejectedQuota => "rejected_quota",
            ServeJobState::RejectedQueue => "rejected_queue",
            ServeJobState::Started => "started",
            ServeJobState::Finished => "finished",
            ServeJobState::Failed => "failed",
        }
    }

    fn parse(s: &str) -> Result<Self> {
        Ok(match s {
            "admitted" => ServeJobState::Admitted,
            "rejected_quota" => ServeJobState::RejectedQuota,
            "rejected_queue" => ServeJobState::RejectedQueue,
            "started" => ServeJobState::Started,
            "finished" => ServeJobState::Finished,
            "failed" => ServeJobState::Failed,
            other => return Err(Error::job(format!("unknown serve job state '{other}'"))),
        })
    }
}

/// One structured simulation event. See `OBSERVABILITY.md` at the
/// repository root for the glossary mapping every variant and field to
/// the paper quantity it measures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A map-task attempt was dispatched to a node's map slot.
    MapStart {
        /// Dispatch time (µs).
        t: u64,
        /// Input chunk index.
        chunk: u32,
        /// Attempt number (0 = first execution; retries count up).
        attempt: u32,
        /// Hosting node.
        node: u32,
    },
    /// A map-task attempt committed its output.
    MapFinish {
        /// Dispatch time (µs).
        t0: u64,
        /// Commit time (µs).
        t: u64,
        /// Input chunk index.
        chunk: u32,
        /// Hosting node.
        node: u32,
        /// CPU charged to the task (µs).
        cpu: u64,
        /// Map output bytes produced (shuffle volume; `K_m·C` per task).
        output_bytes: u64,
        /// Map-side internal spill bytes written (`U_2` contribution).
        spill_bytes: u64,
    },
    /// One per-reducer shuffle payload travelled over the network.
    Shuffle {
        /// Departure from the mapper (µs).
        t0: u64,
        /// Arrival at the reducer (µs).
        t: u64,
        /// Source node.
        from_node: u32,
        /// Destination reducer index.
        reducer: u32,
        /// Payload bytes.
        bytes: u64,
    },
    /// A node's pre-shuffle staging table flushed under
    /// `CombineScope::Node`: the cross-task combined rows were rebuilt
    /// into per-reducer payloads and booked on the network. Emitted only
    /// under node scope, so off/task traces stay byte-identical to the
    /// pinned vocabulary.
    NodeCombine {
        /// Flush start (µs).
        t0: u64,
        /// Flush end — when the merge CPU charge finished and the
        /// transfers departed (µs).
        t: u64,
        /// Node whose staging table flushed.
        node: u32,
        /// Pre-combine bytes offered to the table since its last flush.
        bytes_in: u64,
        /// Post-combine bytes the flush shipped.
        bytes_out: u64,
        /// Distinct staged rows (keys) the flush shipped.
        keys: u64,
    },
    /// A device operation on a node's disk queue (every simulated read
    /// or write; seeks count discrete sequential requests, Prop 3.2's
    /// `S`).
    Io {
        /// Queue-granted start (µs).
        t0: u64,
        /// Completion (µs).
        t: u64,
        /// Node whose device served the operation.
        node: u32,
        /// Table 2 category (`U_1`…`U_5`).
        cat: IoCategory,
        /// Bytes read.
        read: u64,
        /// Bytes written.
        written: u64,
        /// Discrete sequential requests issued.
        seeks: u64,
        /// Whether this operation re-does work lost to a fault (recovery
        /// re-replay). Recovery traffic is excluded from first-pass
        /// rollups — the model predicts fault-free executions.
        recovery: bool,
    },
    /// A closed task-timeline interval (map task, merge pass, shuffle
    /// transfer, reduce work) — the Fig 2(a) lanes.
    Span {
        /// Interval start (µs).
        t0: u64,
        /// Interval end (µs).
        t: u64,
        /// Node the interval ran on.
        node: u32,
        /// Operation class.
        kind: SpanKind,
    },
    /// A fault-injection decision fired.
    Fault {
        /// Decision time (µs).
        t: u64,
        /// Fault class.
        kind: FaultKind,
        /// Chunk index (map faults) or reducer index (reduce faults).
        target: u64,
        /// Attempt the fault hit.
        attempt: u32,
    },
    /// A recovery retry was scheduled after a fault (backoff included).
    Retry {
        /// Scheduled restart time (µs).
        t: u64,
        /// The fault class being recovered from.
        kind: FaultKind,
        /// Chunk index (map faults) or reducer index (reduce faults).
        target: u64,
        /// Attempt number of the retry.
        attempt: u32,
    },
    /// A second-wave reduce task started (wave-one reducers start at
    /// time zero and emit no explicit start event).
    ReduceStart {
        /// Start time (µs).
        t: u64,
        /// Reducer index.
        reducer: u32,
        /// Hosting node.
        node: u32,
    },
    /// A reduce task finished (final merge + reduce function complete).
    ReduceFinish {
        /// Completion time (µs).
        t: u64,
        /// Reducer index.
        reducer: u32,
        /// Hosting node.
        node: u32,
    },
    /// A streaming micro-batch sealed: every shuffle delivery from the
    /// batch's own chunks has been absorbed (`opa-stream`).
    BatchSeal {
        /// Seal time (µs).
        t: u64,
        /// 1-based index of the sealed batch.
        batch: u32,
        /// Total configured batches `k`.
        batches: u32,
        /// Arrival-ordered records covered by the sealed prefix (a
        /// watermark lower bound).
        records: u64,
    },
    /// A stream checkpoint file was written at a seal point.
    Checkpoint {
        /// Checkpoint time (µs).
        t: u64,
        /// Batch the checkpoint covers.
        batch: u32,
        /// Serialized checkpoint size in bytes.
        bytes: u64,
    },
    /// One reducer's frequency-gated admission summary, emitted right
    /// after its `reduce_finish` — only when the LFU admission policy is
    /// on, so admission-off traces stay byte-identical to the pinned
    /// vocabulary.
    Admission {
        /// Completion time (µs), matching the reducer's finish event.
        t: u64,
        /// Reducer index.
        reducer: u32,
        /// Tuples offered to the reducer's table.
        offered: u64,
        /// Tuples absorbed into resident in-memory state.
        absorbed: u64,
        /// Evict-and-admit decisions taken.
        evictions: u64,
        /// Arrivals denied admission and spilled.
        rejected: u64,
    },
    /// A map UDF rejected one input record; the record was quarantined to
    /// the dead-letter queue with full provenance instead of failing the
    /// task.
    Poison {
        /// Commit time of the chunk the record belonged to (µs).
        t: u64,
        /// Map chunk (task) index.
        chunk: u32,
        /// The record's global input offset.
        offset: u64,
        /// The map-task attempt that committed the chunk.
        attempt: u32,
    },
    /// A job's lifecycle transition inside the `opa serve` scheduler.
    /// Tenant and job identity are carried on every serving-layer event
    /// so multi-tenant traces can be filtered per tenant.
    ServeJob {
        /// Scheduler round at which the transition happened (serving-layer
        /// events use round counters, not virtual µs — the server
        /// interleaves jobs whose virtual clocks are independent).
        t: u64,
        /// Tenant index (interned registration order).
        tenant: u32,
        /// Server-assigned job id.
        job: u32,
        /// The lifecycle transition.
        state: ServeJobState,
    },
    /// The `opa serve` scheduler granted one job its next wave (a
    /// micro-batch of engine progress); grants within a round are issued
    /// in admission order, which is what makes interleaving deterministic.
    WaveGrant {
        /// Scheduler round of the grant.
        t: u64,
        /// Tenant index.
        tenant: u32,
        /// Server-assigned job id.
        job: u32,
        /// 1-based wave (micro-batch) number granted.
        wave: u32,
    },
    /// A dead-letter-queue replay was executed for one finished job.
    DlqReplay {
        /// Scheduler round of the replay.
        t: u64,
        /// Tenant index.
        tenant: u32,
        /// Server-assigned job id.
        job: u32,
        /// Quarantined entries the replay covered.
        entries: u64,
    },
    /// A dataflow stage began consuming its input. Dataflow-level events
    /// carry the stage index as `t` (each stage's engine run has its own
    /// virtual clock, so chain-level events use ordinal time, like the
    /// serving layer's round counters).
    StageStart {
        /// Stage index within the chain (doubles as the event time).
        t: u64,
        /// Stage index within the chain.
        stage: u32,
        /// Input records entering this stage's map phase.
        records: u64,
        /// Input bytes entering this stage's map phase.
        bytes: u64,
    },
    /// One stage's output was handed to the next stage, with the exchange
    /// path taken: `reshuffled = 0` is the in-memory partition-stable
    /// handoff, `1` means the dataset crossed a real shuffle (engine run
    /// over re-encoded records).
    StageHandoff {
        /// Stage index of the *producing* stage (and the event time).
        t: u64,
        /// Stage index of the producing stage.
        stage: u32,
        /// Records handed to the next stage.
        records: u64,
        /// Bytes handed to the next stage.
        bytes: u64,
        /// Whether the handoff crossed a real shuffle.
        reshuffled: bool,
    },
    /// The partition-compatibility check passed for a stage, so its
    /// shuffle was skipped outright: the carried h1 fingerprints proved
    /// every record already sits on its reducer's partition and the map
    /// is declared partition-preserving.
    ReshuffleSkipped {
        /// Stage index whose shuffle was skipped (and the event time).
        t: u64,
        /// Stage index whose shuffle was skipped.
        stage: u32,
        /// Map-output bytes that would have crossed the network had the
        /// stage reshuffled.
        bytes_saved: u64,
    },
}

impl TraceEvent {
    /// The event's stable wire label (the JSONL `ev` field).
    pub fn label(&self) -> &'static str {
        match self {
            TraceEvent::MapStart { .. } => "map_start",
            TraceEvent::MapFinish { .. } => "map_finish",
            TraceEvent::Shuffle { .. } => "shuffle",
            TraceEvent::NodeCombine { .. } => "node_combine",
            TraceEvent::Io { .. } => "io",
            TraceEvent::Span { .. } => "span",
            TraceEvent::Fault { .. } => "fault",
            TraceEvent::Retry { .. } => "retry",
            TraceEvent::ReduceStart { .. } => "reduce_start",
            TraceEvent::ReduceFinish { .. } => "reduce_finish",
            TraceEvent::BatchSeal { .. } => "batch_seal",
            TraceEvent::Checkpoint { .. } => "checkpoint",
            TraceEvent::Admission { .. } => "admission",
            TraceEvent::Poison { .. } => "poison",
            TraceEvent::ServeJob { .. } => "serve_job",
            TraceEvent::WaveGrant { .. } => "wave_grant",
            TraceEvent::DlqReplay { .. } => "dlq_replay",
            TraceEvent::StageStart { .. } => "stage_start",
            TraceEvent::StageHandoff { .. } => "stage_handoff",
            TraceEvent::ReshuffleSkipped { .. } => "reshuffle_skipped",
        }
    }

    /// The event's occurrence time in microseconds (for intervals, the
    /// end time).
    pub fn time(&self) -> u64 {
        match *self {
            TraceEvent::MapStart { t, .. }
            | TraceEvent::MapFinish { t, .. }
            | TraceEvent::Shuffle { t, .. }
            | TraceEvent::NodeCombine { t, .. }
            | TraceEvent::Io { t, .. }
            | TraceEvent::Span { t, .. }
            | TraceEvent::Fault { t, .. }
            | TraceEvent::Retry { t, .. }
            | TraceEvent::ReduceStart { t, .. }
            | TraceEvent::ReduceFinish { t, .. }
            | TraceEvent::BatchSeal { t, .. }
            | TraceEvent::Checkpoint { t, .. }
            | TraceEvent::Admission { t, .. }
            | TraceEvent::Poison { t, .. }
            | TraceEvent::ServeJob { t, .. }
            | TraceEvent::WaveGrant { t, .. }
            | TraceEvent::DlqReplay { t, .. }
            | TraceEvent::StageStart { t, .. }
            | TraceEvent::StageHandoff { t, .. }
            | TraceEvent::ReshuffleSkipped { t, .. } => t,
        }
    }

    /// Serializes the event as one JSON line (no trailing newline).
    /// Field order is fixed, values are integers or short enum strings —
    /// byte-stable across runs.
    pub fn to_json(&self) -> String {
        match *self {
            TraceEvent::MapStart {
                t,
                chunk,
                attempt,
                node,
            } => format!(
                "{{\"ev\":\"map_start\",\"t\":{t},\"chunk\":{chunk},\"attempt\":{attempt},\"node\":{node}}}"
            ),
            TraceEvent::MapFinish {
                t0,
                t,
                chunk,
                node,
                cpu,
                output_bytes,
                spill_bytes,
            } => format!(
                "{{\"ev\":\"map_finish\",\"t0\":{t0},\"t\":{t},\"chunk\":{chunk},\"node\":{node},\"cpu\":{cpu},\"output_bytes\":{output_bytes},\"spill_bytes\":{spill_bytes}}}"
            ),
            TraceEvent::Shuffle {
                t0,
                t,
                from_node,
                reducer,
                bytes,
            } => format!(
                "{{\"ev\":\"shuffle\",\"t0\":{t0},\"t\":{t},\"from_node\":{from_node},\"reducer\":{reducer},\"bytes\":{bytes}}}"
            ),
            TraceEvent::NodeCombine {
                t0,
                t,
                node,
                bytes_in,
                bytes_out,
                keys,
            } => format!(
                "{{\"ev\":\"node_combine\",\"t0\":{t0},\"t\":{t},\"node\":{node},\"bytes_in\":{bytes_in},\"bytes_out\":{bytes_out},\"keys\":{keys}}}"
            ),
            TraceEvent::Io {
                t0,
                t,
                node,
                cat,
                read,
                written,
                seeks,
                recovery,
            } => format!(
                "{{\"ev\":\"io\",\"t0\":{t0},\"t\":{t},\"node\":{node},\"cat\":\"{}\",\"read\":{read},\"written\":{written},\"seeks\":{seeks},\"recovery\":{}}}",
                io_category_label(cat),
                u8::from(recovery),
            ),
            TraceEvent::Span { t0, t, node, kind } => format!(
                "{{\"ev\":\"span\",\"t0\":{t0},\"t\":{t},\"node\":{node},\"kind\":\"{}\"}}",
                kind.label()
            ),
            TraceEvent::Fault {
                t,
                kind,
                target,
                attempt,
            } => format!(
                "{{\"ev\":\"fault\",\"t\":{t},\"kind\":\"{}\",\"target\":{target},\"attempt\":{attempt}}}",
                fault_kind_label(kind)
            ),
            TraceEvent::Retry {
                t,
                kind,
                target,
                attempt,
            } => format!(
                "{{\"ev\":\"retry\",\"t\":{t},\"kind\":\"{}\",\"target\":{target},\"attempt\":{attempt}}}",
                fault_kind_label(kind)
            ),
            TraceEvent::ReduceStart { t, reducer, node } => format!(
                "{{\"ev\":\"reduce_start\",\"t\":{t},\"reducer\":{reducer},\"node\":{node}}}"
            ),
            TraceEvent::ReduceFinish { t, reducer, node } => format!(
                "{{\"ev\":\"reduce_finish\",\"t\":{t},\"reducer\":{reducer},\"node\":{node}}}"
            ),
            TraceEvent::BatchSeal {
                t,
                batch,
                batches,
                records,
            } => format!(
                "{{\"ev\":\"batch_seal\",\"t\":{t},\"batch\":{batch},\"batches\":{batches},\"records\":{records}}}"
            ),
            TraceEvent::Checkpoint { t, batch, bytes } => {
                format!("{{\"ev\":\"checkpoint\",\"t\":{t},\"batch\":{batch},\"bytes\":{bytes}}}")
            }
            TraceEvent::Admission {
                t,
                reducer,
                offered,
                absorbed,
                evictions,
                rejected,
            } => format!(
                "{{\"ev\":\"admission\",\"t\":{t},\"reducer\":{reducer},\"offered\":{offered},\"absorbed\":{absorbed},\"evictions\":{evictions},\"rejected\":{rejected}}}"
            ),
            TraceEvent::Poison {
                t,
                chunk,
                offset,
                attempt,
            } => format!(
                "{{\"ev\":\"poison\",\"t\":{t},\"chunk\":{chunk},\"offset\":{offset},\"attempt\":{attempt}}}"
            ),
            TraceEvent::ServeJob {
                t,
                tenant,
                job,
                state,
            } => format!(
                "{{\"ev\":\"serve_job\",\"t\":{t},\"tenant\":{tenant},\"job\":{job},\"state\":\"{}\"}}",
                state.label()
            ),
            TraceEvent::WaveGrant {
                t,
                tenant,
                job,
                wave,
            } => format!(
                "{{\"ev\":\"wave_grant\",\"t\":{t},\"tenant\":{tenant},\"job\":{job},\"wave\":{wave}}}"
            ),
            TraceEvent::DlqReplay {
                t,
                tenant,
                job,
                entries,
            } => format!(
                "{{\"ev\":\"dlq_replay\",\"t\":{t},\"tenant\":{tenant},\"job\":{job},\"entries\":{entries}}}"
            ),
            TraceEvent::StageStart {
                t,
                stage,
                records,
                bytes,
            } => format!(
                "{{\"ev\":\"stage_start\",\"t\":{t},\"stage\":{stage},\"records\":{records},\"bytes\":{bytes}}}"
            ),
            TraceEvent::StageHandoff {
                t,
                stage,
                records,
                bytes,
                reshuffled,
            } => format!(
                "{{\"ev\":\"stage_handoff\",\"t\":{t},\"stage\":{stage},\"records\":{records},\"bytes\":{bytes},\"reshuffled\":{}}}",
                u8::from(reshuffled),
            ),
            TraceEvent::ReshuffleSkipped {
                t,
                stage,
                bytes_saved,
            } => format!(
                "{{\"ev\":\"reshuffle_skipped\",\"t\":{t},\"stage\":{stage},\"bytes_saved\":{bytes_saved}}}"
            ),
        }
    }

    /// Parses one JSONL line back into an event.
    pub fn from_json(line: &str) -> Result<TraceEvent> {
        let obj = JsonValue::parse(line)?;
        let ev = obj.str_field("ev")?;
        let t = |k: &str| obj.u64_field(k);
        let u32f = |k: &str| obj.u64_field(k).map(|v| v as u32);
        Ok(match ev {
            "map_start" => TraceEvent::MapStart {
                t: t("t")?,
                chunk: u32f("chunk")?,
                attempt: u32f("attempt")?,
                node: u32f("node")?,
            },
            "map_finish" => TraceEvent::MapFinish {
                t0: t("t0")?,
                t: t("t")?,
                chunk: u32f("chunk")?,
                node: u32f("node")?,
                cpu: t("cpu")?,
                output_bytes: t("output_bytes")?,
                spill_bytes: t("spill_bytes")?,
            },
            "shuffle" => TraceEvent::Shuffle {
                t0: t("t0")?,
                t: t("t")?,
                from_node: u32f("from_node")?,
                reducer: u32f("reducer")?,
                bytes: t("bytes")?,
            },
            "node_combine" => TraceEvent::NodeCombine {
                t0: t("t0")?,
                t: t("t")?,
                node: u32f("node")?,
                bytes_in: t("bytes_in")?,
                bytes_out: t("bytes_out")?,
                keys: t("keys")?,
            },
            "io" => TraceEvent::Io {
                t0: t("t0")?,
                t: t("t")?,
                node: u32f("node")?,
                cat: parse_io_category(obj.str_field("cat")?)?,
                read: t("read")?,
                written: t("written")?,
                seeks: t("seeks")?,
                recovery: t("recovery")? != 0,
            },
            "span" => TraceEvent::Span {
                t0: t("t0")?,
                t: t("t")?,
                node: u32f("node")?,
                kind: SpanKind::parse(obj.str_field("kind")?)?,
            },
            "fault" => TraceEvent::Fault {
                t: t("t")?,
                kind: parse_fault_kind(obj.str_field("kind")?)?,
                target: t("target")?,
                attempt: u32f("attempt")?,
            },
            "retry" => TraceEvent::Retry {
                t: t("t")?,
                kind: parse_fault_kind(obj.str_field("kind")?)?,
                target: t("target")?,
                attempt: u32f("attempt")?,
            },
            "reduce_start" => TraceEvent::ReduceStart {
                t: t("t")?,
                reducer: u32f("reducer")?,
                node: u32f("node")?,
            },
            "reduce_finish" => TraceEvent::ReduceFinish {
                t: t("t")?,
                reducer: u32f("reducer")?,
                node: u32f("node")?,
            },
            "batch_seal" => TraceEvent::BatchSeal {
                t: t("t")?,
                batch: u32f("batch")?,
                batches: u32f("batches")?,
                records: t("records")?,
            },
            "checkpoint" => TraceEvent::Checkpoint {
                t: t("t")?,
                batch: u32f("batch")?,
                bytes: t("bytes")?,
            },
            "admission" => TraceEvent::Admission {
                t: t("t")?,
                reducer: u32f("reducer")?,
                offered: t("offered")?,
                absorbed: t("absorbed")?,
                evictions: t("evictions")?,
                rejected: t("rejected")?,
            },
            "poison" => TraceEvent::Poison {
                t: t("t")?,
                chunk: u32f("chunk")?,
                offset: t("offset")?,
                attempt: u32f("attempt")?,
            },
            "serve_job" => TraceEvent::ServeJob {
                t: t("t")?,
                tenant: u32f("tenant")?,
                job: u32f("job")?,
                state: ServeJobState::parse(obj.str_field("state")?)?,
            },
            "wave_grant" => TraceEvent::WaveGrant {
                t: t("t")?,
                tenant: u32f("tenant")?,
                job: u32f("job")?,
                wave: u32f("wave")?,
            },
            "dlq_replay" => TraceEvent::DlqReplay {
                t: t("t")?,
                tenant: u32f("tenant")?,
                job: u32f("job")?,
                entries: t("entries")?,
            },
            "stage_start" => TraceEvent::StageStart {
                t: t("t")?,
                stage: u32f("stage")?,
                records: t("records")?,
                bytes: t("bytes")?,
            },
            "stage_handoff" => TraceEvent::StageHandoff {
                t: t("t")?,
                stage: u32f("stage")?,
                records: t("records")?,
                bytes: t("bytes")?,
                reshuffled: t("reshuffled")? != 0,
            },
            "reshuffle_skipped" => TraceEvent::ReshuffleSkipped {
                t: t("t")?,
                stage: u32f("stage")?,
                bytes_saved: t("bytes_saved")?,
            },
            other => return Err(Error::job(format!("unknown trace event '{other}'"))),
        })
    }
}

/// The scheduler's event collector: a thin append-only buffer the engine
/// owns while a traced job runs. The engine holds an
/// `Option<Box<Tracer>>`; when tracing is off no allocation, branch work
/// beyond one `is_none` check, or formatting happens.
#[derive(Debug, Default)]
pub struct Tracer {
    events: Vec<TraceEvent>,
}

impl Tracer {
    /// A fresh, empty tracer.
    pub fn new() -> Self {
        Tracer::default()
    }

    /// Appends one event.
    #[inline]
    pub fn push(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    /// Number of events collected so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events have been collected.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Consumes the tracer into a finished [`TraceLog`].
    pub fn into_log(self) -> TraceLog {
        TraceLog {
            events: self.events,
        }
    }
}

/// A finished trace: every structured event of one run, in scheduler
/// event order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceLog {
    /// The events, in emission (scheduler event) order.
    pub events: Vec<TraceEvent>,
}

impl TraceLog {
    /// Serializes the whole trace as JSON Lines (one event per line,
    /// trailing newline included). Byte-stable across runs and thread
    /// counts.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 96);
        for ev in &self.events {
            out.push_str(&ev.to_json());
            out.push('\n');
        }
        out
    }

    /// Parses a JSONL trace produced by [`TraceLog::to_jsonl`]. Blank
    /// lines are skipped.
    pub fn from_jsonl(text: &str) -> Result<TraceLog> {
        let mut events = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            events.push(
                TraceEvent::from_json(line)
                    .map_err(|e| Error::job(format!("trace line {}: {e}", i + 1)))?,
            );
        }
        Ok(TraceLog { events })
    }

    /// Writes the trace to `path` as JSONL.
    pub fn write_jsonl(&self, path: &std::path::Path) -> Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)
                .map_err(|e| Error::storage(format!("mkdir {}: {e}", dir.display())))?;
        }
        std::fs::write(path, self.to_jsonl())
            .map_err(|e| Error::storage(format!("write {}: {e}", path.display())))
    }

    /// Reads a JSONL trace from `path`.
    pub fn read_jsonl(path: &std::path::Path) -> Result<TraceLog> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| Error::storage(format!("read {}: {e}", path.display())))?;
        TraceLog::from_jsonl(&text)
    }

    /// Builds the per-phase metric rollup for this trace.
    pub fn rollup(&self) -> crate::rollup::Rollup {
        crate::rollup::Rollup::from_events(&self.events)
    }

    /// Renders the trace in Chrome trace-event format (Perfetto-loadable).
    pub fn to_chrome(&self) -> String {
        crate::chrome::to_chrome(&self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<TraceEvent> {
        vec![
            TraceEvent::MapStart {
                t: 0,
                chunk: 3,
                attempt: 0,
                node: 1,
            },
            TraceEvent::MapFinish {
                t0: 0,
                t: 1500,
                chunk: 3,
                node: 1,
                cpu: 800,
                output_bytes: 4096,
                spill_bytes: 0,
            },
            TraceEvent::Shuffle {
                t0: 1500,
                t: 1600,
                from_node: 1,
                reducer: 2,
                bytes: 1024,
            },
            TraceEvent::NodeCombine {
                t0: 1600,
                t: 1650,
                node: 1,
                bytes_in: 4096,
                bytes_out: 1024,
                keys: 12,
            },
            TraceEvent::Io {
                t0: 1600,
                t: 1700,
                node: 0,
                cat: IoCategory::ReduceSpill,
                read: 0,
                written: 512,
                seeks: 1,
                recovery: true,
            },
            TraceEvent::Span {
                t0: 100,
                t: 900,
                node: 0,
                kind: SpanKind::Merge,
            },
            TraceEvent::Fault {
                t: 42,
                kind: FaultKind::Straggler,
                target: 7,
                attempt: 0,
            },
            TraceEvent::Retry {
                t: 99,
                kind: FaultKind::ReduceFailure,
                target: 1,
                attempt: 2,
            },
            TraceEvent::ReduceStart {
                t: 5,
                reducer: 9,
                node: 1,
            },
            TraceEvent::ReduceFinish {
                t: 8000,
                reducer: 9,
                node: 1,
            },
            TraceEvent::BatchSeal {
                t: 7000,
                batch: 2,
                batches: 4,
                records: 1234,
            },
            TraceEvent::Checkpoint {
                t: 7001,
                batch: 2,
                bytes: 8888,
            },
            TraceEvent::Admission {
                t: 8000,
                reducer: 9,
                offered: 5000,
                absorbed: 4100,
                evictions: 37,
                rejected: 900,
            },
            TraceEvent::Poison {
                t: 1500,
                chunk: 3,
                offset: 77,
                attempt: 1,
            },
            TraceEvent::ServeJob {
                t: 2,
                tenant: 1,
                job: 4,
                state: ServeJobState::Admitted,
            },
            TraceEvent::WaveGrant {
                t: 3,
                tenant: 1,
                job: 4,
                wave: 2,
            },
            TraceEvent::DlqReplay {
                t: 9,
                tenant: 1,
                job: 4,
                entries: 6,
            },
            TraceEvent::StageStart {
                t: 0,
                stage: 0,
                records: 100_000,
                bytes: 9_600_000,
            },
            TraceEvent::StageHandoff {
                t: 0,
                stage: 0,
                records: 5_000,
                bytes: 120_000,
                reshuffled: false,
            },
            TraceEvent::ReshuffleSkipped {
                t: 1,
                stage: 1,
                bytes_saved: 120_000,
            },
        ]
    }

    #[test]
    fn jsonl_roundtrip_is_lossless() {
        let log = TraceLog { events: samples() };
        let text = log.to_jsonl();
        let back = TraceLog::from_jsonl(&text).expect("parse");
        assert_eq!(log, back);
        // And the re-serialization is byte-identical.
        assert_eq!(text, back.to_jsonl());
    }

    #[test]
    fn every_event_parses_its_own_label() {
        for ev in samples() {
            let parsed = TraceEvent::from_json(&ev.to_json()).expect("parse");
            assert_eq!(parsed.label(), ev.label());
            assert_eq!(parsed, ev);
        }
    }

    #[test]
    fn bad_lines_are_rejected_with_line_numbers() {
        let err = TraceLog::from_jsonl("{\"ev\":\"nope\"}\n").unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
        assert!(TraceLog::from_jsonl("not json\n").is_err());
    }

    #[test]
    fn blank_lines_are_skipped() {
        let log = TraceLog { events: samples() };
        let spaced = log.to_jsonl().replace('\n', "\n\n");
        assert_eq!(TraceLog::from_jsonl(&spaced).expect("parse"), log);
    }
}
