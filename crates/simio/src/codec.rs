//! IFile-style record serialization.
//!
//! Hadoop stages intermediate data in *IFiles*: length-prefixed key/value
//! records with a trailing checksum. OPA uses the same framing — two 32-bit
//! big-endian length prefixes per record — which is exactly the
//! [`RECORD_OVERHEAD`](opa_common::types::RECORD_OVERHEAD) charged by the
//! engine's byte accounting, so a serialized run's length equals the sum of
//! the `size()` of its records. A CRC-32 (IEEE) of the payload guards
//! against corruption when runs are persisted to real files
//! ([`encode_run`]/[`decode_run`]).

use opa_common::{Error, Key, Pair, Result, StatePair, Value};

/// The reflected CRC-32 (IEEE 802.3) polynomial.
const CRC_POLY: u32 = 0xEDB8_8320;

/// Slice-by-8 lookup tables, built at compile time: `CRC_TABLE[0]` is the
/// classic byte table; `CRC_TABLE[j][b]` advances the effect of byte `b`
/// through `j` further zero bytes, which is what lets eight table lookups
/// retire eight input bytes at once.
static CRC_TABLE: [[u32; 256]; 8] = build_crc_tables();

const fn build_crc_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                (c >> 1) ^ CRC_POLY
            } else {
                c >> 1
            };
            k += 1;
        }
        t[0][i] = c;
        i += 1;
    }
    let mut j = 1;
    while j < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = t[j - 1][i];
            t[j][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            i += 1;
        }
        j += 1;
    }
    t
}

/// CRC-32 (IEEE 802.3) over `data` — the checksum IFiles trail runs with.
///
/// Slice-by-8: eight input bytes fold through eight independent table
/// lookups per step, so the carried dependency is one xor-tree instead of
/// 64 bit-serial rounds. Bit-identical to [`crc32_reference`]
/// (property-tested, plus the standard check vectors below).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    let mut chunks = data.chunks_exact(8);
    for w in &mut chunks {
        let lo = u32::from_le_bytes(w[..4].try_into().expect("4 bytes")) ^ crc;
        let hi = u32::from_le_bytes(w[4..].try_into().expect("4 bytes"));
        crc = CRC_TABLE[7][(lo & 0xFF) as usize]
            ^ CRC_TABLE[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC_TABLE[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC_TABLE[4][(lo >> 24) as usize]
            ^ CRC_TABLE[3][(hi & 0xFF) as usize]
            ^ CRC_TABLE[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC_TABLE[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC_TABLE[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ CRC_TABLE[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// The table-free bit-serial reference implementation of [`crc32`] — the
/// specification the slice-by-8 fast path must match bit-for-bit.
pub fn crc32_reference(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (CRC_POLY & mask);
        }
    }
    !crc
}

/// Appends one framed record to `out`.
pub fn encode_record(out: &mut Vec<u8>, key: &[u8], value: &[u8]) {
    out.extend_from_slice(&(key.len() as u32).to_be_bytes());
    out.extend_from_slice(&(value.len() as u32).to_be_bytes());
    out.extend_from_slice(key);
    out.extend_from_slice(value);
}

/// Reads one framed record starting at `pos`; returns the key/value slices
/// and the position after the record.
pub fn decode_record(buf: &[u8], pos: usize) -> Result<(&[u8], &[u8], usize)> {
    let hdr = buf
        .get(pos..pos + 8)
        .ok_or_else(|| Error::storage("truncated record header"))?;
    let klen = u32::from_be_bytes(hdr[..4].try_into().expect("4 bytes")) as usize;
    let vlen = u32::from_be_bytes(hdr[4..].try_into().expect("4 bytes")) as usize;
    let key = buf
        .get(pos + 8..pos + 8 + klen)
        .ok_or_else(|| Error::storage("truncated key"))?;
    let value = buf
        .get(pos + 8 + klen..pos + 8 + klen + vlen)
        .ok_or_else(|| Error::storage("truncated value"))?;
    Ok((key, value, pos + 8 + klen + vlen))
}

/// Magic prefix of a serialized run.
const MAGIC: &[u8; 4] = b"OPA1";

/// Serializes a run of pairs: magic, record count, framed records, CRC-32.
pub fn encode_run(pairs: &[Pair]) -> Vec<u8> {
    let payload_len: usize = pairs.iter().map(|p| p.size() as usize).sum();
    let mut out = Vec::with_capacity(payload_len + 16);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(pairs.len() as u64).to_be_bytes());
    for p in pairs {
        encode_record(&mut out, p.key.bytes(), p.value.bytes());
    }
    let crc = crc32(&out[12..]);
    out.extend_from_slice(&crc.to_be_bytes());
    out
}

/// Deserializes a run produced by [`encode_run`], verifying the checksum.
pub fn decode_run(buf: &[u8]) -> Result<Vec<Pair>> {
    if buf.len() < 16 || &buf[..4] != MAGIC {
        return Err(Error::storage("bad run header"));
    }
    let n = u64::from_be_bytes(buf[4..12].try_into().expect("8 bytes")) as usize;
    let body = &buf[12..buf.len() - 4];
    let stored = u32::from_be_bytes(buf[buf.len() - 4..].try_into().expect("4 bytes"));
    if crc32(body) != stored {
        return Err(Error::storage("run checksum mismatch"));
    }
    // The count field sits outside the checksummed region, so it must be
    // sanity-checked before it sizes an allocation: every record carries
    // at least an 8-byte header.
    if n > body.len() / 8 {
        return Err(Error::storage("run record count exceeds body size"));
    }
    let mut pairs = Vec::with_capacity(n);
    let mut pos = 0usize;
    for _ in 0..n {
        let (k, v, next) = decode_record(body, pos)?;
        pairs.push(Pair::new(Key::new(k.to_vec()), Value::new(v.to_vec())));
        pos = next;
    }
    if pos != body.len() {
        return Err(Error::storage("trailing bytes after last record"));
    }
    Ok(pairs)
}

/// Serializes a run of key-state pairs (same framing).
pub fn encode_state_run(tuples: &[StatePair]) -> Vec<u8> {
    let pairs: Vec<Pair> = tuples
        .iter()
        .map(|t| Pair::new(t.key.clone(), t.state.clone()))
        .collect();
    encode_run(&pairs)
}

/// Deserializes a key-state run.
pub fn decode_state_run(buf: &[u8]) -> Result<Vec<StatePair>> {
    Ok(decode_run(buf)?
        .into_iter()
        .map(|p| StatePair::new(p.key, p.value))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Vec<Pair> {
        (0..n)
            .map(|i| {
                Pair::new(
                    Key::from_u64(i as u64),
                    Value::new(vec![i as u8; (i % 37) + 1]),
                )
            })
            .collect()
    }

    #[test]
    fn crc32_reference_vectors() {
        // Well-known CRC-32 (IEEE) check values.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32_reference(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32_reference(b""), 0);
        assert_eq!(crc32_reference(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn crc32_slice_by_8_matches_bitwise_at_boundary_lengths() {
        // The boundary lengths the sliced loop can mishandle: empty,
        // just-under/at/over the 8-byte stride, the engine's inline-key
        // sizes (22/23), and a multi-stride run.
        for len in [0usize, 1, 7, 8, 9, 15, 16, 22, 23, 1024, 1031] {
            let data: Vec<u8> = (0..len)
                .map(|i| (i as u8).wrapping_mul(37) ^ 0x5A)
                .collect();
            assert_eq!(
                crc32(&data),
                crc32_reference(&data),
                "crc diverged at length {len}"
            );
        }
    }

    #[test]
    fn run_roundtrip() {
        let pairs = sample(100);
        let buf = encode_run(&pairs);
        let decoded = decode_run(&buf).expect("valid run");
        assert_eq!(decoded, pairs);
    }

    #[test]
    fn empty_run_roundtrip() {
        let buf = encode_run(&[]);
        assert_eq!(decode_run(&buf).unwrap(), Vec::<Pair>::new());
    }

    #[test]
    fn framing_matches_engine_accounting() {
        // The serialized length must equal Σ size() + header + checksum,
        // because size() is what the engine charges for buffers and disks.
        let pairs = sample(25);
        let payload: u64 = pairs.iter().map(Pair::size).sum();
        let buf = encode_run(&pairs);
        assert_eq!(buf.len() as u64, payload + 12 + 4);
    }

    #[test]
    fn corruption_is_detected() {
        let pairs = sample(10);
        let mut buf = encode_run(&pairs);
        let mid = buf.len() / 2;
        buf[mid] ^= 0x40;
        assert!(matches!(decode_run(&buf), Err(Error::Storage(_))));
    }

    #[test]
    fn truncation_is_detected() {
        let pairs = sample(10);
        let buf = encode_run(&pairs);
        assert!(decode_run(&buf[..buf.len() - 5]).is_err());
        assert!(decode_run(&buf[..3]).is_err());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = encode_run(&sample(2));
        buf[0] = b'X';
        assert!(decode_run(&buf).is_err());
    }

    #[test]
    fn state_run_roundtrip() {
        let tuples: Vec<StatePair> = (0..20)
            .map(|i| StatePair::new(Key::from_u64(i), Value::new(vec![9u8; 64])))
            .collect();
        let buf = encode_state_run(&tuples);
        assert_eq!(decode_state_run(&buf).unwrap(), tuples);
    }

    #[test]
    fn record_level_decode_walks_positions() {
        let mut buf = Vec::new();
        encode_record(&mut buf, b"k1", b"v1");
        encode_record(&mut buf, b"key2", b"");
        let (k, v, pos) = decode_record(&buf, 0).unwrap();
        assert_eq!((k, v), (b"k1".as_ref(), b"v1".as_ref()));
        let (k2, v2, end) = decode_record(&buf, pos).unwrap();
        assert_eq!((k2, v2), (b"key2".as_ref(), b"".as_ref()));
        assert_eq!(end, buf.len());
    }
}
