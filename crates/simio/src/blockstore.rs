//! HDFS-like block store.
//!
//! HDFS stores job input in fixed-size blocks (64 MB by default) that double
//! as the map-task granularity (§2.2). [`BlockStore::split`] cuts a stream
//! of record sizes into chunks of at most `C` bytes and assigns each chunk a
//! home node round-robin, modelling uniform block placement with map-side
//! locality (Hadoop schedules maps on the node holding the block).

use serde::{Deserialize, Serialize};
use std::ops::Range;

/// One input chunk: a contiguous range of record indices resident on a node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Chunk {
    /// Node holding (and mapping) this chunk.
    pub node: usize,
    /// Record-index range into the job input.
    pub range: Range<usize>,
    /// Serialized size of the chunk in bytes.
    pub bytes: u64,
}

impl Chunk {
    /// Number of records in the chunk.
    pub fn len(&self) -> usize {
        self.range.len()
    }

    /// Whether the chunk holds no records.
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }
}

/// The split of one job input into node-assigned chunks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockStore {
    chunks: Vec<Chunk>,
    total_bytes: u64,
    total_records: usize,
}

impl BlockStore {
    /// Splits records (given by their serialized sizes) into chunks of at
    /// most `chunk_size` bytes, assigned round-robin over `nodes`. A record
    /// larger than `chunk_size` gets a chunk of its own (records never
    /// straddle blocks, like lines under `TextInputFormat`).
    ///
    /// # Panics
    /// Panics if `chunk_size == 0` or `nodes == 0`.
    pub fn split<I>(record_sizes: I, chunk_size: u64, nodes: usize) -> Self
    where
        I: IntoIterator<Item = u64>,
    {
        assert!(chunk_size > 0, "chunk size must be positive");
        assert!(nodes > 0, "node count must be positive");
        let mut chunks = Vec::new();
        let mut start = 0usize;
        let mut cur_bytes = 0u64;
        let mut total_bytes = 0u64;
        let mut idx = 0usize;
        for sz in record_sizes {
            if cur_bytes > 0 && cur_bytes + sz > chunk_size {
                chunks.push((start..idx, cur_bytes));
                start = idx;
                cur_bytes = 0;
            }
            cur_bytes += sz;
            total_bytes += sz;
            idx += 1;
        }
        if cur_bytes > 0 {
            chunks.push((start..idx, cur_bytes));
        }
        let chunks = chunks
            .into_iter()
            .enumerate()
            .map(|(i, (range, bytes))| Chunk {
                node: i % nodes,
                range,
                bytes,
            })
            .collect();
        BlockStore {
            chunks,
            total_bytes,
            total_records: idx,
        }
    }

    /// All chunks in input order.
    pub fn chunks(&self) -> &[Chunk] {
        &self.chunks
    }

    /// Number of map tasks this input yields (`D / C` in the model).
    pub fn num_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Total input bytes `D`.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Total record count.
    pub fn total_records(&self) -> usize {
        self.total_records
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_at_chunk_boundaries() {
        // 10 records of 30 bytes, 100-byte chunks → 3+3+3+1.
        let bs = BlockStore::split(std::iter::repeat_n(30, 10), 100, 2);
        let lens: Vec<usize> = bs.chunks().iter().map(Chunk::len).collect();
        assert_eq!(lens, vec![3, 3, 3, 1]);
        assert_eq!(bs.total_bytes(), 300);
        assert_eq!(bs.total_records(), 10);
    }

    #[test]
    fn ranges_partition_the_input() {
        let sizes: Vec<u64> = (1..=50).map(|i| (i % 7) + 1).collect();
        let bs = BlockStore::split(sizes.iter().copied(), 16, 3);
        let mut next = 0usize;
        let mut byte_sum = 0u64;
        for c in bs.chunks() {
            assert_eq!(c.range.start, next, "gap or overlap in ranges");
            assert!(!c.is_empty());
            next = c.range.end;
            byte_sum += c.bytes;
            let expect: u64 = sizes[c.range.clone()].iter().sum();
            assert_eq!(c.bytes, expect);
        }
        assert_eq!(next, sizes.len());
        assert_eq!(byte_sum, bs.total_bytes());
    }

    #[test]
    fn nodes_assigned_round_robin() {
        let bs = BlockStore::split(std::iter::repeat_n(10, 100), 10, 4);
        for (i, c) in bs.chunks().iter().enumerate() {
            assert_eq!(c.node, i % 4);
        }
    }

    #[test]
    fn oversized_record_gets_own_chunk() {
        let bs = BlockStore::split([5u64, 500, 5], 100, 1);
        let lens: Vec<usize> = bs.chunks().iter().map(Chunk::len).collect();
        // 5 fits; 500 won't join it (overflow) and fills its own chunk;
        // the final 5 starts fresh.
        assert_eq!(lens, vec![1, 1, 1]);
        assert_eq!(bs.chunks()[1].bytes, 500);
    }

    #[test]
    fn empty_input_no_chunks() {
        let bs = BlockStore::split(std::iter::empty(), 64, 2);
        assert_eq!(bs.num_chunks(), 0);
        assert_eq!(bs.total_bytes(), 0);
    }
}
