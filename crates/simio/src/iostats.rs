//! Five-category I/O accounting.
//!
//! Table 2 of the paper decomposes per-node I/O into `U = U_1 + … + U_5`
//! (map input, map internal spills, map output, reduce internal spills,
//! reduce output) and counts sequential I/O requests `S`. [`IoStats`] keeps
//! exactly that decomposition; every simulated device operation yields an
//! [`IoOp`] that the engine both merges into an [`IoStats`] and prices
//! through a [`crate::DiskProfile`].

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign};

/// The paper's five I/O categories (Table 2, symbol `U_i`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IoCategory {
    /// `U_1` — reading job input (HDFS).
    MapInput,
    /// `U_2` — map-side internal spills (external sort of map output).
    MapSpill,
    /// `U_3` — writing map output for shuffling.
    MapOutput,
    /// `U_4` — reduce-side internal spills (multi-pass merge or hash
    /// buckets).
    ReduceSpill,
    /// `U_5` — writing job output (HDFS).
    ReduceOutput,
}

impl IoCategory {
    /// All categories in `U_1..U_5` order.
    pub const ALL: [IoCategory; 5] = [
        IoCategory::MapInput,
        IoCategory::MapSpill,
        IoCategory::MapOutput,
        IoCategory::ReduceSpill,
        IoCategory::ReduceOutput,
    ];

    #[inline]
    fn index(self) -> usize {
        match self {
            IoCategory::MapInput => 0,
            IoCategory::MapSpill => 1,
            IoCategory::MapOutput => 2,
            IoCategory::ReduceSpill => 3,
            IoCategory::ReduceOutput => 4,
        }
    }
}

/// One device operation: how many bytes moved and how many discrete I/O
/// requests (seeks) it took. Returned by every spill/bucket/block-store
/// mutation so the caller can charge simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[must_use = "IoOps carry the bytes/seeks the caller must charge time for"]
pub struct IoOp {
    /// Bytes read from the device.
    pub read: u64,
    /// Bytes written to the device.
    pub written: u64,
    /// Number of discrete sequential I/O requests issued.
    pub seeks: u64,
}

impl IoOp {
    /// The no-op (all zeros).
    pub const NONE: IoOp = IoOp {
        read: 0,
        written: 0,
        seeks: 0,
    };

    /// A single sequential write request of `bytes`.
    pub fn write(bytes: u64) -> Self {
        IoOp {
            read: 0,
            written: bytes,
            seeks: if bytes > 0 { 1 } else { 0 },
        }
    }

    /// A single sequential read request of `bytes`.
    pub fn read(bytes: u64) -> Self {
        IoOp {
            read: bytes,
            written: 0,
            seeks: if bytes > 0 { 1 } else { 0 },
        }
    }

    /// Total bytes moved in either direction.
    #[inline]
    pub fn total_bytes(&self) -> u64 {
        self.read + self.written
    }

    /// Whether nothing happened.
    #[inline]
    pub fn is_none(&self) -> bool {
        *self == IoOp::NONE
    }
}

impl Add for IoOp {
    type Output = IoOp;
    fn add(self, rhs: IoOp) -> IoOp {
        IoOp {
            read: self.read + rhs.read,
            written: self.written + rhs.written,
            seeks: self.seeks + rhs.seeks,
        }
    }
}

impl AddAssign for IoOp {
    fn add_assign(&mut self, rhs: IoOp) {
        *self = *self + rhs;
    }
}

/// Aggregated I/O statistics with the paper's five-way decomposition.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoStats {
    read: [u64; 5],
    written: [u64; 5],
    seeks: u64,
}

impl IoStats {
    /// Fresh, all-zero statistics.
    pub fn new() -> Self {
        IoStats::default()
    }

    /// Records an operation under a category.
    pub fn record(&mut self, cat: IoCategory, op: IoOp) {
        let i = cat.index();
        self.read[i] += op.read;
        self.written[i] += op.written;
        self.seeks += op.seeks;
    }

    /// Bytes read in a category.
    pub fn read_bytes(&self, cat: IoCategory) -> u64 {
        self.read[cat.index()]
    }

    /// Bytes written in a category.
    pub fn written_bytes(&self, cat: IoCategory) -> u64 {
        self.written[cat.index()]
    }

    /// Bytes read + written in a category (`U_i` counts both directions:
    /// each spill file is written once and read once).
    pub fn bytes(&self, cat: IoCategory) -> u64 {
        self.read_bytes(cat) + self.written_bytes(cat)
    }

    /// `U` — total bytes moved across all five categories.
    pub fn total_bytes(&self) -> u64 {
        IoCategory::ALL.iter().map(|&c| self.bytes(c)).sum()
    }

    /// `S` — total number of I/O requests.
    pub fn total_seeks(&self) -> u64 {
        self.seeks
    }

    /// Merges another stats block into this one (e.g. per-task → per-job).
    pub fn merge(&mut self, other: &IoStats) {
        for i in 0..5 {
            self.read[i] += other.read[i];
            self.written[i] += other.written[i];
        }
        self.seeks += other.seeks;
    }

    /// Per-field saturating subtraction, used to strip recovery re-replay
    /// traffic back out of a total (`JobMetrics::io_first_pass`).
    pub fn minus(&self, other: &IoStats) -> IoStats {
        let mut out = IoStats::new();
        for i in 0..5 {
            out.read[i] = self.read[i].saturating_sub(other.read[i]);
            out.written[i] = self.written[i].saturating_sub(other.written[i]);
        }
        out.seeks = self.seeks.saturating_sub(other.seeks);
        out
    }
}

/// Spill-byte attribution under frequency-gated admission: the `U_4`
/// (and map-side `U_2`) spill traffic split by *why* each byte went to
/// disk.
///
/// With admission off every spilled byte is a `rejected_arrival` — the
/// classic first-come policy spills whatever fails to fit. With the LFU
/// policy on, some spills are instead `admitted_evict`: a resident cold
/// key's state written out to make room for a hotter newcomer. The split
/// lets the bench/CI sweep verify that total spill bytes drop *because*
/// eviction traffic replaces (rather than adds to) rejection traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpillSplit {
    /// Bytes spilled as evicted resident state (victim writes performed
    /// to admit a hotter arriving key).
    pub admitted_evict: u64,
    /// Bytes spilled as rejected arrivals (tuples denied admission, or
    /// all spills when the policy is off).
    pub rejected_arrival: u64,
}

impl SpillSplit {
    /// All-zero split.
    pub fn new() -> Self {
        SpillSplit::default()
    }

    /// Total spill bytes across both attributions.
    pub fn total(&self) -> u64 {
        self.admitted_evict + self.rejected_arrival
    }

    /// Merges another split into this one (per-task → per-job).
    pub fn merge(&mut self, other: &SpillSplit) {
        self.admitted_evict += other.admitted_evict;
        self.rejected_arrival += other.rejected_arrival;
    }
}

impl fmt::Display for SpillSplit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use opa_common::units::ByteSize;
        write!(
            f,
            "spill split: {} evicted-resident + {} rejected-arrival",
            ByteSize(self.admitted_evict),
            ByteSize(self.rejected_arrival)
        )
    }
}

impl fmt::Display for IoStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use opa_common::units::ByteSize;
        writeln!(f, "I/O by category (read + written):")?;
        for (label, cat) in [
            ("U1 map input    ", IoCategory::MapInput),
            ("U2 map spill    ", IoCategory::MapSpill),
            ("U3 map output   ", IoCategory::MapOutput),
            ("U4 reduce spill ", IoCategory::ReduceSpill),
            ("U5 reduce output", IoCategory::ReduceOutput),
        ] {
            writeln!(f, "  {label} {}", ByteSize(self.bytes(cat)))?;
        }
        write!(
            f,
            "  total {} in {} requests",
            ByteSize(self.total_bytes()),
            self.seeks
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_per_category() {
        let mut s = IoStats::new();
        s.record(IoCategory::MapSpill, IoOp::write(100));
        s.record(IoCategory::MapSpill, IoOp::read(100));
        s.record(IoCategory::ReduceSpill, IoOp::write(40));
        assert_eq!(s.bytes(IoCategory::MapSpill), 200);
        assert_eq!(s.written_bytes(IoCategory::ReduceSpill), 40);
        assert_eq!(s.read_bytes(IoCategory::ReduceSpill), 0);
        assert_eq!(s.total_bytes(), 240);
        assert_eq!(s.total_seeks(), 3);
    }

    #[test]
    fn zero_byte_ops_cost_no_seek() {
        assert_eq!(IoOp::write(0), IoOp::NONE);
        assert_eq!(IoOp::read(0).seeks, 0);
        assert!(IoOp::NONE.is_none());
    }

    #[test]
    fn ops_add() {
        let op = IoOp::write(10) + IoOp::read(5) + IoOp::write(1);
        assert_eq!(op.read, 5);
        assert_eq!(op.written, 11);
        assert_eq!(op.seeks, 3);
        assert_eq!(op.total_bytes(), 16);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = IoStats::new();
        a.record(IoCategory::MapInput, IoOp::read(7));
        let mut b = IoStats::new();
        b.record(IoCategory::MapInput, IoOp::read(3));
        b.record(IoCategory::ReduceOutput, IoOp::write(9));
        a.merge(&b);
        assert_eq!(a.bytes(IoCategory::MapInput), 10);
        assert_eq!(a.bytes(IoCategory::ReduceOutput), 9);
        assert_eq!(a.total_seeks(), 3);
    }

    #[test]
    fn display_mentions_all_categories() {
        let s = IoStats::new();
        let out = s.to_string();
        for label in ["U1", "U2", "U3", "U4", "U5", "total"] {
            assert!(out.contains(label), "missing {label} in {out}");
        }
    }
}
