//! # opa-simio
//!
//! Simulated storage substrate for the One-Pass Analytics platform.
//!
//! The paper's evaluation is dominated by *where bytes go*: map input, map
//! internal spills, map output, reduce internal spills, and reduce output —
//! the five categories `U_1..U_5` of Table 2 — plus the number of I/O
//! requests `S` (seeks). This crate provides the pieces that make those
//! flows explicit and measurable without a real cluster:
//!
//! - [`iostats`] — five-category byte/seek accounting ([`IoStats`],
//!   [`IoOp`]);
//! - [`disk`] — device cost profiles ([`DiskProfile`]) translating an
//!   [`IoOp`] into simulated time (HDD: 80 MB/s + 4 ms seeks — the paper's
//!   constants; SSD for the Fig 2(d) experiment);
//! - [`spill`] — spill files holding real record runs ([`SpillStore`]);
//! - [`bucket`] — the paged-write-buffer bucket file manager of §4
//!   ([`BucketManager`]);
//! - [`blockstore`] — an HDFS-like splitter assigning chunk-sized input
//!   blocks to nodes ([`BlockStore`]);
//! - [`codec`] — IFile-style record framing with CRC-32 checksums, for
//!   persisting runs and job outputs to real files;
//! - [`ckpt`] — the CRC-guarded framed-section container used by stream
//!   job checkpoints ([`ckpt::Section`]);
//! - [`fault`] — deterministic spill-disk error injection
//!   ([`DiskFaultInjector`]), consulted by the engine's disk queues when a
//!   fault plan is active.
//!
//! Data written to these "disks" is retained in memory so the engine can
//! read it back and produce *correct* job output; only the accounting and
//! the cost model treat it as disk traffic.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod blockstore;
pub mod bucket;
pub mod ckpt;
pub mod codec;
pub mod disk;
pub mod fault;
pub mod iostats;
pub mod spill;

pub use blockstore::{BlockStore, Chunk};
pub use bucket::BucketManager;
pub use disk::DiskProfile;
pub use fault::DiskFaultInjector;
pub use iostats::{IoCategory, IoOp, IoStats, SpillSplit};
pub use spill::{SpillFile, SpillStore};

/// Anything with a serialized size, so spill/bucket managers can account
/// bytes generically over [`opa_common::Pair`] and [`opa_common::StatePair`].
pub trait Sized64 {
    /// Serialized size in bytes, as charged against buffers and disks.
    fn size(&self) -> u64;
}

impl Sized64 for opa_common::Pair {
    fn size(&self) -> u64 {
        opa_common::Pair::size(self)
    }
}

impl Sized64 for opa_common::StatePair {
    fn size(&self) -> u64 {
        opa_common::StatePair::size(self)
    }
}
