//! Checkpoint container format: CRC-guarded framed sections.
//!
//! A stream-job checkpoint is a flat sequence of typed sections — raw
//! bytes, `u64` arrays, pair runs and state runs — so `opa-simio` stays
//! ignorant of the engine types layered on top (the stream runtime decides
//! what each section *means*). The container reuses the IFile-style
//! hardening of [`crate::codec`]: every length is bounds-checked before it
//! sizes an allocation, and a trailing CRC-32 over the whole file detects
//! corruption before any section is interpreted.
//!
//! Layout: `"OPAC"`, format version (`u32` BE), then per section a kind
//! byte, a `u64` BE payload length and the payload, and finally a CRC-32
//! (BE) of everything before it. Pair/state sections embed a complete
//! [`crate::codec::encode_run`] buffer, so they carry (and verify) their
//! own record-level checksums too.

use crate::codec::{crc32, decode_run, decode_state_run, encode_run, encode_state_run};
use opa_common::{Error, Pair, Result, StatePair};

/// Magic prefix of a checkpoint file.
const MAGIC: &[u8; 4] = b"OPAC";
/// Container format version.
const VERSION: u32 = 1;

const KIND_BYTES: u8 = 0;
const KIND_NUMS: u8 = 1;
const KIND_PAIRS: u8 = 2;
const KIND_STATES: u8 = 3;

/// One typed checkpoint section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Section {
    /// Uninterpreted bytes (e.g. a framework tag or free-form metadata).
    Bytes(Vec<u8>),
    /// An array of `u64` values (counters, times, queue entries).
    Nums(Vec<u64>),
    /// A run of key-value pairs.
    Pairs(Vec<Pair>),
    /// A run of key-state pairs.
    States(Vec<StatePair>),
}

/// Serializes sections into a checkpoint buffer.
pub fn encode_sections(sections: &[Section]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_be_bytes());
    for s in sections {
        let (kind, payload) = match s {
            Section::Bytes(b) => (KIND_BYTES, b.clone()),
            Section::Nums(ns) => {
                let mut p = Vec::with_capacity(ns.len() * 8);
                for n in ns {
                    p.extend_from_slice(&n.to_be_bytes());
                }
                (KIND_NUMS, p)
            }
            Section::Pairs(ps) => (KIND_PAIRS, encode_run(ps)),
            Section::States(ts) => (KIND_STATES, encode_state_run(ts)),
        };
        out.push(kind);
        out.extend_from_slice(&(payload.len() as u64).to_be_bytes());
        out.extend_from_slice(&payload);
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_be_bytes());
    out
}

/// Deserializes a checkpoint buffer, verifying the container CRC and every
/// embedded run checksum. All lengths are bounds-checked against the
/// remaining buffer before they size an allocation.
pub fn decode_sections(buf: &[u8]) -> Result<Vec<Section>> {
    if buf.len() < 12 || &buf[..4] != MAGIC {
        return Err(Error::storage("bad checkpoint header"));
    }
    let version = u32::from_be_bytes(buf[4..8].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(Error::storage(format!(
            "unsupported checkpoint format version {version} (expected {VERSION})"
        )));
    }
    let body = &buf[..buf.len() - 4];
    let stored = u32::from_be_bytes(buf[buf.len() - 4..].try_into().expect("4 bytes"));
    if crc32(body) != stored {
        return Err(Error::storage("checkpoint checksum mismatch"));
    }
    let mut sections = Vec::new();
    let mut pos = 8usize;
    while pos < body.len() {
        let kind = body[pos];
        let len_bytes = body
            .get(pos + 1..pos + 9)
            .ok_or_else(|| Error::storage("truncated section header"))?;
        let len = u64::from_be_bytes(len_bytes.try_into().expect("8 bytes")) as usize;
        // Checked: a forged length near u64::MAX must hit the bounds
        // error, not overflow the slice arithmetic.
        let end = (pos + 9)
            .checked_add(len)
            .ok_or_else(|| Error::storage("section length exceeds buffer"))?;
        let payload = body
            .get(pos + 9..end)
            .ok_or_else(|| Error::storage("section length exceeds buffer"))?;
        sections.push(match kind {
            KIND_BYTES => Section::Bytes(payload.to_vec()),
            KIND_NUMS => {
                if !len.is_multiple_of(8) {
                    return Err(Error::storage("number section length not a multiple of 8"));
                }
                Section::Nums(
                    payload
                        .chunks_exact(8)
                        .map(|c| u64::from_be_bytes(c.try_into().expect("8 bytes")))
                        .collect(),
                )
            }
            KIND_PAIRS => Section::Pairs(decode_run(payload)?),
            KIND_STATES => Section::States(decode_state_run(payload)?),
            other => return Err(Error::storage(format!("unknown section kind {other}"))),
        });
        pos = end;
    }
    Ok(sections)
}

#[cfg(test)]
mod tests {
    use super::*;
    use opa_common::{Key, Value};

    fn sample() -> Vec<Section> {
        vec![
            Section::Bytes(b"stream-meta".to_vec()),
            Section::Nums(vec![0, 1, u64::MAX, 42]),
            Section::Pairs(vec![
                Pair::new(Key::from_u64(1), Value::from_u64(10)),
                Pair::new(Key::from_u64(2), Value::new(vec![7u8; 33])),
            ]),
            Section::States(vec![StatePair::new(
                Key::from_u64(9),
                Value::new(vec![1, 2, 3]),
            )]),
            Section::Nums(Vec::new()),
        ]
    }

    #[test]
    fn sections_roundtrip() {
        let sections = sample();
        let buf = encode_sections(&sections);
        assert_eq!(decode_sections(&buf).unwrap(), sections);
    }

    #[test]
    fn empty_checkpoint_roundtrips() {
        let buf = encode_sections(&[]);
        assert_eq!(decode_sections(&buf).unwrap(), Vec::<Section>::new());
    }

    #[test]
    fn corruption_is_detected() {
        let mut buf = encode_sections(&sample());
        let mid = buf.len() / 2;
        buf[mid] ^= 0x10;
        assert!(decode_sections(&buf).is_err());
    }

    #[test]
    fn truncation_is_detected() {
        let buf = encode_sections(&sample());
        for cut in [3, 9, buf.len() - 1] {
            assert!(decode_sections(&buf[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn oversized_section_length_rejected_without_allocating() {
        // Forge a section claiming more payload than the file holds; the
        // decoder must fail on the bounds check, not attempt the read.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"OPAC");
        buf.extend_from_slice(&1u32.to_be_bytes());
        buf.push(0u8);
        buf.extend_from_slice(&u64::MAX.to_be_bytes());
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_be_bytes());
        assert!(decode_sections(&buf).is_err());
    }

    #[test]
    fn unknown_kind_and_version_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"OPAC");
        buf.extend_from_slice(&1u32.to_be_bytes());
        buf.push(99u8);
        buf.extend_from_slice(&0u64.to_be_bytes());
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_be_bytes());
        assert!(decode_sections(&buf).is_err());

        let mut v2 = encode_sections(&[]);
        v2[7] = 9; // bump version, fix CRC
        let crc = crc32(&v2[..v2.len() - 4]);
        let n = v2.len();
        v2[n - 4..].copy_from_slice(&crc.to_be_bytes());
        assert!(decode_sections(&v2).is_err());
    }
}
