//! Spill files: simulated on-disk runs of records.
//!
//! Both the sort-merge baseline (sorted runs + merged files, Fig. 3 of the
//! paper) and the hash frameworks (bucket files) stage intermediate data to
//! disk. A [`SpillStore`] keeps each staged run in memory while accounting
//! for it as disk traffic: writing a run and reading it back each return an
//! [`IoOp`] the engine prices and records.

use crate::iostats::IoOp;
use crate::Sized64;

/// Identifier of a spill file within one [`SpillStore`].
pub type FileId = usize;

/// One staged run.
#[derive(Debug, Clone)]
pub struct SpillFile<T> {
    /// Store-unique id.
    pub id: FileId,
    /// The staged records, in the order they were written.
    pub records: Vec<T>,
    /// Serialized size of the run in bytes.
    pub bytes: u64,
}

/// An append-only collection of spill files belonging to one task.
///
/// Files are created whole (one sequential write) and consumed whole (one
/// sequential read); removal models the deletion of inputs after a merge.
#[derive(Debug)]
pub struct SpillStore<T> {
    files: Vec<Option<SpillFile<T>>>,
    live: usize,
    /// Total bytes ever written into this store (spill volume).
    written_bytes: u64,
}

impl<T: Sized64> SpillStore<T> {
    /// An empty store.
    pub fn new() -> Self {
        SpillStore {
            files: Vec::new(),
            live: 0,
            written_bytes: 0,
        }
    }

    /// Writes a run to disk. Returns the new file's id and the write
    /// operation to charge.
    pub fn write_file(&mut self, records: Vec<T>) -> (FileId, IoOp) {
        let bytes: u64 = records.iter().map(Sized64::size).sum();
        let id = self.files.len();
        self.files.push(Some(SpillFile { id, records, bytes }));
        self.live += 1;
        self.written_bytes += bytes;
        (id, IoOp::write(bytes))
    }

    /// Reads a live file without consuming it (snapshots re-read inputs
    /// that later merges still need). Returns a copy of the records and
    /// the read operation to charge.
    pub fn read_file(&mut self, id: FileId) -> Option<(Vec<T>, IoOp)>
    where
        T: Clone,
    {
        let f = self.files.get(id)?.as_ref()?;
        Some((f.records.clone(), IoOp::read(f.bytes)))
    }

    /// Reads a file back and deletes it (merge inputs are consumed).
    /// Returns `None` if the id is unknown or already consumed.
    pub fn take_file(&mut self, id: FileId) -> Option<(SpillFile<T>, IoOp)> {
        let f = self.files.get_mut(id)?.take()?;
        self.live -= 1;
        let op = IoOp::read(f.bytes);
        Some((f, op))
    }

    /// Size in bytes of a live file.
    pub fn file_bytes(&self, id: FileId) -> Option<u64> {
        self.files.get(id)?.as_ref().map(|f| f.bytes)
    }

    /// Ids and sizes of all live files, in creation order.
    pub fn live_files(&self) -> impl Iterator<Item = (FileId, u64)> + '_ {
        self.files.iter().flatten().map(|f| (f.id, f.bytes))
    }

    /// Number of live (unconsumed) files — what the merge trigger compares
    /// against `2F − 1`.
    pub fn live_count(&self) -> usize {
        self.live
    }

    /// Total bytes of live files.
    pub fn live_bytes(&self) -> u64 {
        self.files.iter().flatten().map(|f| f.bytes).sum()
    }

    /// Total bytes ever written (the "reduce spill" / "map spill" metric of
    /// Tables 1, 3 and 4).
    pub fn total_written(&self) -> u64 {
        self.written_bytes
    }

    /// Copies of all live runs, in creation order — the checkpoint
    /// counterpart of [`SpillStore::restore`]. Consumed files are not
    /// exported (their contents were merged into later runs).
    pub fn export_runs(&self) -> Vec<Vec<T>>
    where
        T: Clone,
    {
        self.files
            .iter()
            .flatten()
            .map(|f| f.records.clone())
            .collect()
    }

    /// Rebuilds a store holding the given runs as its live files, ids
    /// compacted to `0..runs.len()`. Callers must not hold [`FileId`]s from
    /// the original store across a restore; relative creation order (and
    /// therefore merge-selection order) is preserved. `total_written`
    /// restarts at the live volume — spill metrics cover the restored
    /// portion of a run only.
    pub fn restore(runs: Vec<Vec<T>>) -> Self {
        let mut s = SpillStore::new();
        for run in runs {
            let _ = s.write_file(run);
        }
        s
    }
}

impl<T: Sized64> Default for SpillStore<T> {
    fn default() -> Self {
        SpillStore::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opa_common::{Key, Pair, Value};

    fn pairs(n: usize) -> Vec<Pair> {
        (0..n)
            .map(|i| Pair::new(Key::from_u64(i as u64), Value::from_u64(1)))
            .collect()
    }

    #[test]
    fn write_then_take_roundtrips_records() {
        let mut s = SpillStore::new();
        let run = pairs(10);
        let total: u64 = run.iter().map(|p| p.size()).sum();
        let (id, wop) = s.write_file(run.clone());
        assert_eq!(wop.written, total);
        assert_eq!(wop.seeks, 1);
        assert_eq!(s.live_count(), 1);
        let (f, rop) = s.take_file(id).unwrap();
        assert_eq!(f.records, run);
        assert_eq!(rop.read, total);
        assert_eq!(s.live_count(), 0);
    }

    #[test]
    fn double_take_returns_none() {
        let mut s = SpillStore::new();
        let (id, _op) = s.write_file(pairs(1));
        assert!(s.take_file(id).is_some());
        assert!(s.take_file(id).is_none());
        assert!(s.take_file(999).is_none());
    }

    #[test]
    fn live_files_reflect_consumption() {
        let mut s = SpillStore::new();
        let ids: Vec<_> = (0..5).map(|i| s.write_file(pairs(i + 1)).0).collect();
        let (_f, _op) = s.take_file(ids[2]).unwrap();
        let live: Vec<_> = s.live_files().map(|(id, _)| id).collect();
        assert_eq!(live, vec![0, 1, 3, 4]);
        assert_eq!(s.live_count(), 4);
    }

    #[test]
    fn total_written_counts_consumed_files_too() {
        let mut s = SpillStore::new();
        let (id, op) = s.write_file(pairs(4));
        let w = op.written;
        let (_f, _op) = s.take_file(id).unwrap();
        let (_id2, op2) = s.write_file(pairs(2));
        assert_eq!(s.total_written(), w + op2.written);
        assert!(s.live_bytes() < s.total_written());
    }
}
