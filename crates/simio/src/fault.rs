//! Injectable spill-disk I/O errors.
//!
//! The engine routes every intermediate-data operation through one
//! serialized disk queue per node; a [`DiskFaultInjector`] sits in front
//! of that queue and deterministically decides, per operation, how many
//! transient errors it suffers before succeeding. A failed attempt moves
//! the same bytes again (the write is torn, the read returns garbage), so
//! each error charges the operation's full duration a second time and the
//! bytes count as wasted.
//!
//! Decisions are keyed on the *operation ordinal*, not on a shared RNG
//! stream. The engine performs disk operations on the scheduling thread in
//! strict event order, so the ordinal sequence — and therefore the error
//! trace — is identical across execution-layer thread counts.

use opa_common::fault::{decision, FaultEvent, FaultKind};
use opa_common::units::SimTime;

/// Deterministic spill-disk error source for one job run.
#[derive(Debug)]
pub struct DiskFaultInjector {
    seed: u64,
    rate: f64,
    max_retries: u32,
    next_op: u64,
    errors: u64,
    wasted_bytes: u64,
    trace: Vec<FaultEvent>,
}

impl DiskFaultInjector {
    /// Creates an injector failing each spill operation with probability
    /// `rate` per attempt, at most `max_retries` times per operation.
    pub fn new(seed: u64, rate: f64, max_retries: u32) -> Self {
        DiskFaultInjector {
            seed,
            rate,
            max_retries,
            next_op: 0,
            errors: 0,
            wasted_bytes: 0,
            trace: Vec::new(),
        }
    }

    /// Decides the fate of the next spill operation, requested at `t` and
    /// moving `bytes` bytes. Returns the number of failed attempts to
    /// charge before the operation succeeds (usually 0). Records each
    /// failure in the trace.
    pub fn inject(&mut self, t: SimTime, bytes: u64) -> u32 {
        let op = self.next_op;
        self.next_op += 1;
        if self.rate <= 0.0 {
            return 0;
        }
        let mut failures = 0u32;
        while failures < self.max_retries
            && decision(self.seed, FaultKind::SpillError, op, u64::from(failures)) < self.rate
        {
            self.trace.push(FaultEvent {
                time: t,
                kind: FaultKind::SpillError,
                target: op,
                attempt: failures,
            });
            failures += 1;
        }
        self.errors += u64::from(failures);
        self.wasted_bytes += bytes * u64::from(failures);
        failures
    }

    /// Total failed attempts so far.
    pub fn errors(&self) -> u64 {
        self.errors
    }

    /// Bytes moved by failed attempts.
    pub fn wasted_bytes(&self) -> u64 {
        self.wasted_bytes
    }

    /// Consumes the injector, yielding its failure trace.
    pub fn into_trace(self) -> Vec<FaultEvent> {
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn zero_rate_never_fails() {
        let mut inj = DiskFaultInjector::new(1, 0.0, 3);
        for i in 0..1000 {
            assert_eq!(inj.inject(t(i as f64), 4096), 0);
        }
        assert_eq!(inj.errors(), 0);
        assert_eq!(inj.wasted_bytes(), 0);
        assert!(inj.into_trace().is_empty());
    }

    #[test]
    fn failures_fire_at_roughly_the_configured_rate() {
        let mut inj = DiskFaultInjector::new(77, 0.2, 3);
        let mut failed_ops = 0u64;
        for i in 0..10_000u64 {
            if inj.inject(t(i as f64), 100) > 0 {
                failed_ops += 1;
            }
        }
        assert!(
            (1500..2500).contains(&failed_ops),
            "~20% of ops should fail at least once, got {failed_ops}"
        );
        assert_eq!(inj.wasted_bytes(), inj.errors() * 100);
    }

    #[test]
    fn retries_are_bounded() {
        // Rate near 1: every attempt the hash allows will fail, but never
        // more than max_retries per operation.
        let mut inj = DiskFaultInjector::new(5, 0.999, 2);
        for i in 0..100u64 {
            assert!(inj.inject(t(i as f64), 10) <= 2);
        }
    }

    #[test]
    fn same_seed_reproduces_the_trace() {
        let run = || {
            let mut inj = DiskFaultInjector::new(13, 0.3, 3);
            for i in 0..500u64 {
                inj.inject(t(i as f64), 64);
            }
            inj.into_trace()
        };
        assert_eq!(run(), run());
        let mut other = DiskFaultInjector::new(14, 0.3, 3);
        for i in 0..500u64 {
            other.inject(t(i as f64), 64);
        }
        assert_ne!(run(), other.into_trace(), "different seed, different trace");
    }
}
