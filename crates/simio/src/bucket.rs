//! The bucket file manager of the hash frameworks (§4, §5 of the paper).
//!
//! A reducer running MR-hash / INC-hash / DINC-hash partitions overflow
//! tuples into `h` on-disk bucket files. Each bucket owns a write buffer of
//! `p` pages; tuples accumulate there and are flushed in one request when
//! the buffer fills ("streamed out to disks as their write buffers fill
//! up"). Using more pages per buffer trades memory for fewer random writes
//! — exactly the `p > 1` remark in the paper's footnote 5.

use crate::iostats::IoOp;
use crate::Sized64;

/// State of one bucket: its buffered tail plus everything already flushed.
/// Flushed data is kept as one segment per flush — segments are moved, not
/// copied, so a large bucket never re-copies its prefix — and concatenated
/// exactly once when the bucket is read back.
#[derive(Debug)]
struct Bucket<T> {
    buffered: Vec<T>,
    buffered_bytes: u64,
    flushed: Vec<Vec<T>>,
    flushed_bytes: u64,
    flush_count: u64,
}

impl<T> Bucket<T> {
    fn new() -> Self {
        Bucket {
            buffered: Vec::new(),
            buffered_bytes: 0,
            flushed: Vec::new(),
            flushed_bytes: 0,
            flush_count: 0,
        }
    }
}

/// Manages `h` bucket files, each behind a paged write buffer.
#[derive(Debug)]
pub struct BucketManager<T> {
    buckets: Vec<Bucket<T>>,
    /// Write-buffer capacity per bucket, in bytes (`p` pages × page size).
    buffer_capacity: u64,
    sealed: bool,
}

impl<T: Sized64> BucketManager<T> {
    /// Creates a manager with `h` buckets and a per-bucket write buffer of
    /// `buffer_capacity` bytes.
    ///
    /// # Panics
    /// Panics if `h == 0` or `buffer_capacity == 0`.
    pub fn new(h: usize, buffer_capacity: u64) -> Self {
        assert!(h > 0, "bucket count must be positive");
        assert!(buffer_capacity > 0, "write buffer must be positive");
        BucketManager {
            buckets: (0..h).map(|_| Bucket::new()).collect(),
            buffer_capacity,
            sealed: false,
        }
    }

    /// Number of buckets `h`.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Memory held by write buffers: `h × buffer_capacity`.
    pub fn buffer_memory(&self) -> u64 {
        self.buckets.len() as u64 * self.buffer_capacity
    }

    /// Appends a tuple to bucket `i`, flushing the write buffer if it
    /// overflows. Returns the I/O (if any) the flush performed.
    ///
    /// # Panics
    /// Panics if the manager was sealed or `i` is out of range.
    pub fn push(&mut self, i: usize, rec: T) -> IoOp {
        assert!(!self.sealed, "push after seal");
        let cap = self.buffer_capacity;
        let b = &mut self.buckets[i];
        b.buffered_bytes += rec.size();
        b.buffered.push(rec);
        if b.buffered_bytes >= cap {
            Self::flush_bucket(b)
        } else {
            IoOp::NONE
        }
    }

    fn flush_bucket(b: &mut Bucket<T>) -> IoOp {
        if b.buffered.is_empty() {
            return IoOp::NONE;
        }
        let bytes = b.buffered_bytes;
        let cap = b.buffered.len();
        b.flushed
            .push(std::mem::replace(&mut b.buffered, Vec::with_capacity(cap)));
        b.flushed_bytes += bytes;
        b.buffered_bytes = 0;
        b.flush_count += 1;
        IoOp::write(bytes)
    }

    /// Flushes every write buffer and freezes the manager. Idempotent.
    pub fn seal(&mut self) -> IoOp {
        let mut op = IoOp::NONE;
        if !self.sealed {
            for b in &mut self.buckets {
                op += Self::flush_bucket(b);
            }
            self.sealed = true;
        }
        op
    }

    /// On-disk size of bucket `i` (excludes any unflushed buffered tail).
    pub fn bucket_bytes(&self, i: usize) -> u64 {
        self.buckets[i].flushed_bytes
    }

    /// Total bytes spilled through this manager so far.
    pub fn total_spilled(&self) -> u64 {
        self.buckets.iter().map(|b| b.flushed_bytes).sum()
    }

    /// Copies every bucket's contents in arrival order (flushed prefix,
    /// then the buffered tail) — the checkpoint counterpart of
    /// [`BucketManager::restore_contents`].
    pub fn export_contents(&self) -> Vec<Vec<T>>
    where
        T: Clone,
    {
        self.buckets
            .iter()
            .map(|b| {
                let total: usize = b.flushed.iter().map(Vec::len).sum();
                let mut v = Vec::with_capacity(total + b.buffered.len());
                for seg in &b.flushed {
                    v.extend(seg.iter().cloned());
                }
                v.extend(b.buffered.iter().cloned());
                v
            })
            .collect()
    }

    /// Refills an empty, unsealed manager from exported contents. Each
    /// bucket's records land as one flushed segment (`flush_count = 1`), so
    /// read-back seek pricing may differ from the original's flush pattern;
    /// record order and byte totals — everything the group-by semantics
    /// depend on — are exact.
    ///
    /// # Panics
    /// Panics if the manager is sealed, already holds data, or the content
    /// count does not match the bucket count.
    pub fn restore_contents(&mut self, contents: Vec<Vec<T>>) {
        assert!(!self.sealed, "restore into a sealed manager");
        assert!(
            self.total_spilled() == 0,
            "restore into a non-empty manager"
        );
        assert_eq!(contents.len(), self.buckets.len(), "bucket count mismatch");
        for (b, recs) in self.buckets.iter_mut().zip(contents) {
            if recs.is_empty() {
                continue;
            }
            b.flushed_bytes = recs.iter().map(Sized64::size).sum();
            b.flush_count = 1;
            b.flushed = vec![recs];
        }
    }

    /// Reads bucket `i` back from disk, consuming it. Must be sealed first.
    /// The read is priced as one request per flush that built the file
    /// (flushed segments are contiguous but a long-lived file interleaves
    /// with its `h − 1` siblings on the platter).
    ///
    /// # Panics
    /// Panics if not sealed.
    pub fn take_bucket(&mut self, i: usize) -> (Vec<T>, IoOp) {
        assert!(self.sealed, "take_bucket before seal");
        let b = &mut self.buckets[i];
        let bytes = b.flushed_bytes;
        let seeks = b.flush_count.max(if bytes > 0 { 1 } else { 0 });
        b.flushed_bytes = 0;
        b.flush_count = 0;
        let recs = match b.flushed.len() {
            0 | 1 => b.flushed.pop().unwrap_or_default(),
            _ => {
                let total: usize = b.flushed.iter().map(Vec::len).sum();
                let mut out = Vec::with_capacity(total);
                for seg in b.flushed.drain(..) {
                    out.extend(seg);
                }
                out
            }
        };
        (
            recs,
            IoOp {
                read: bytes,
                written: 0,
                seeks,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opa_common::{Key, StatePair, Value};

    fn tuple(k: u64, state_len: usize) -> StatePair {
        StatePair::new(Key::from_u64(k), Value::new(vec![0u8; state_len]))
    }

    #[test]
    fn small_pushes_buffer_without_io() {
        let mut m = BucketManager::new(4, 1024);
        for k in 0..5 {
            assert!(m.push((k % 4) as usize, tuple(k, 16)).is_none());
        }
        assert_eq!(m.total_spilled(), 0);
    }

    #[test]
    fn buffer_overflow_flushes_one_request() {
        let mut m = BucketManager::new(2, 100);
        // Each tuple is 8 (key) + 80 (state) + 8 (overhead) = 96 bytes.
        assert!(m.push(0, tuple(1, 80)).is_none());
        let op = m.push(0, tuple(2, 80));
        assert_eq!(op.seeks, 1);
        assert_eq!(op.written, 192);
        assert_eq!(m.bucket_bytes(0), 192);
        assert_eq!(m.bucket_bytes(1), 0);
    }

    #[test]
    fn seal_flushes_residue_and_is_idempotent() {
        let mut m = BucketManager::new(3, 1 << 20);
        let mut expect = 0;
        for k in 0..9 {
            let t = tuple(k, 32);
            expect += t.size();
            let _ = m.push((k % 3) as usize, t);
        }
        let op = m.seal();
        assert_eq!(op.written, expect);
        assert_eq!(op.seeks, 3);
        assert!(m.seal().is_none());
        assert_eq!(m.total_spilled(), expect);
    }

    #[test]
    fn take_bucket_returns_all_records_in_order() {
        let mut m = BucketManager::new(2, 150);
        for k in 0..10 {
            let _ = m.push(0, tuple(k, 64));
        }
        let _ = m.seal();
        let (recs, op) = m.take_bucket(0);
        assert_eq!(recs.len(), 10);
        let keys: Vec<u64> = recs.iter().map(|r| r.key.as_u64().unwrap()).collect();
        assert_eq!(keys, (0..10).collect::<Vec<_>>());
        assert!(op.read > 0 && op.seeks >= 1);
        // Consumed: second take is empty and free.
        let (recs2, op2) = m.take_bucket(0);
        assert!(recs2.is_empty());
        assert!(op2.is_none());
    }

    #[test]
    fn read_seeks_match_flush_count() {
        let mut m = BucketManager::new(1, 100);
        let mut flushes = 0;
        for k in 0..20 {
            if m.push(0, tuple(k, 80)).seeks > 0 {
                flushes += 1;
            }
        }
        let sop = m.seal();
        flushes += sop.seeks;
        let (_recs, rop) = m.take_bucket(0);
        assert_eq!(rop.seeks, flushes);
    }

    #[test]
    #[should_panic(expected = "push after seal")]
    fn push_after_seal_panics() {
        let mut m: BucketManager<StatePair> = BucketManager::new(1, 10);
        let _ = m.seal();
        let _ = m.push(0, tuple(0, 1));
    }

    #[test]
    #[should_panic(expected = "take_bucket before seal")]
    fn take_before_seal_panics() {
        let mut m: BucketManager<StatePair> = BucketManager::new(1, 10);
        let _ = m.take_bucket(0);
    }
}
