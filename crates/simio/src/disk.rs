//! Device cost profiles.
//!
//! The paper's model (§3.1, item 4) prices I/O as
//! `T = c_byte · U + c_seek · S`, with sequential access at 80 MB/s and
//! 4 ms per seek on their Western Digital RE3 disks. [`DiskProfile`]
//! captures those two constants per device; the Fig 2(d) experiment swaps
//! the intermediate-data device for an SSD profile.

use crate::iostats::IoOp;
use opa_common::units::{SimDuration, MB};
use serde::{Deserialize, Serialize};

/// Cost profile of one storage device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiskProfile {
    /// Seconds per byte of sequential transfer (`c_byte`).
    pub secs_per_byte: f64,
    /// Seconds per discrete I/O request (`c_seek`).
    pub secs_per_seek: f64,
}

impl DiskProfile {
    /// The paper's HDD: 80 MB/s sequential, 4 ms seek.
    pub fn hdd() -> Self {
        DiskProfile {
            secs_per_byte: 1.0 / (80.0 * MB as f64),
            secs_per_seek: 0.004,
        }
    }

    /// An Intel X25-E-class SSD (the paper's fast intermediate device):
    /// ~250 MB/s sequential, ~0.1 ms access.
    pub fn ssd() -> Self {
        DiskProfile {
            secs_per_byte: 1.0 / (250.0 * MB as f64),
            secs_per_seek: 0.0001,
        }
    }

    /// A free device — useful in unit tests that only care about data flow.
    pub fn instant() -> Self {
        DiskProfile {
            secs_per_byte: 0.0,
            secs_per_seek: 0.0,
        }
    }

    /// Time to serve an operation: `c_byte · bytes + c_seek · seeks`.
    #[inline]
    pub fn time_for(&self, op: IoOp) -> SimDuration {
        SimDuration::from_secs_f64(
            self.secs_per_byte * op.total_bytes() as f64 + self.secs_per_seek * op.seeks as f64,
        )
    }

    /// Time to move `bytes` in one sequential request.
    #[inline]
    pub fn time_for_bytes(&self, bytes: u64) -> SimDuration {
        self.time_for(IoOp::write(bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opa_common::units::GB;

    #[test]
    fn hdd_matches_paper_constants() {
        let d = DiskProfile::hdd();
        // 80 MB at 80 MB/s = 1 s (+1 seek).
        let t = d.time_for(IoOp::write(80 * MB));
        assert!((t.as_secs_f64() - 1.004).abs() < 1e-6, "{t}");
    }

    #[test]
    fn seeks_dominate_small_requests() {
        let d = DiskProfile::hdd();
        let many_small = d.time_for(IoOp {
            read: MB,
            written: 0,
            seeks: 1000,
        });
        let one_big = d.time_for(IoOp::read(MB));
        assert!(many_small.as_secs_f64() > 100.0 * one_big.as_secs_f64());
    }

    #[test]
    fn ssd_faster_than_hdd() {
        let big = IoOp {
            read: GB,
            written: GB,
            seeks: 10_000,
        };
        assert!(DiskProfile::ssd().time_for(big) < DiskProfile::hdd().time_for(big));
    }

    #[test]
    fn instant_is_free() {
        let op = IoOp {
            read: GB,
            written: GB,
            seeks: 1 << 20,
        };
        assert_eq!(DiskProfile::instant().time_for(op), SimDuration::ZERO);
    }
}
