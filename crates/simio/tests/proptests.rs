//! Property-based tests for the storage substrate: byte conservation and
//! partition completeness under arbitrary record streams.

use opa_common::{Key, Pair, StatePair, Value};
use opa_simio::{BlockStore, BucketManager, SpillStore};
use proptest::prelude::*;

fn tuple(k: u64, len: usize) -> StatePair {
    StatePair::new(Key::from_u64(k), Value::new(vec![0xAB; len]))
}

proptest! {
    /// Every record pushed into a bucket manager comes back exactly once,
    /// from the bucket it was pushed to, in push order; written bytes on
    /// flushes equal read bytes on take.
    #[test]
    fn bucket_manager_conserves_records(
        recs in proptest::collection::vec((0u64..500, 1usize..120), 1..300),
        h in 1usize..8,
        buffer in 64u64..2048,
    ) {
        let mut m = BucketManager::new(h, buffer);
        let mut expected: Vec<Vec<(u64, usize)>> = vec![Vec::new(); h];
        let mut written = 0u64;
        for &(k, len) in &recs {
            let b = (k as usize) % h;
            expected[b].push((k, len));
            written += m.push(b, tuple(k, len)).written;
        }
        written += m.seal().written;
        let mut read = 0u64;
        for (b, exp) in expected.iter().enumerate() {
            let (got, op) = m.take_bucket(b);
            read += op.read;
            let got: Vec<(u64, usize)> = got
                .iter()
                .map(|t| (t.key.as_u64().unwrap(), t.state.len()))
                .collect();
            prop_assert_eq!(&got, exp, "bucket {} contents differ", b);
        }
        prop_assert_eq!(written, read, "flushed bytes must equal read bytes");
        prop_assert_eq!(m.total_spilled(), 0, "take_bucket resets accounting");
    }

    /// Spill files round-trip their records and sizes.
    #[test]
    fn spill_store_roundtrip(
        runs in proptest::collection::vec(
            proptest::collection::vec((0u64..100, 1usize..64), 1..40),
            1..10,
        ),
    ) {
        let mut store: SpillStore<StatePair> = SpillStore::new();
        let mut ids = Vec::new();
        let mut total_written = 0u64;
        for run in &runs {
            let records: Vec<StatePair> = run.iter().map(|&(k, l)| tuple(k, l)).collect();
            let (id, op) = store.write_file(records);
            total_written += op.written;
            ids.push(id);
        }
        prop_assert_eq!(store.live_count(), runs.len());
        prop_assert_eq!(store.total_written(), total_written);
        for (id, run) in ids.into_iter().zip(&runs) {
            let (file, op) = store.take_file(id).expect("live file");
            prop_assert_eq!(file.records.len(), run.len());
            prop_assert_eq!(op.read, file.bytes);
        }
        prop_assert_eq!(store.live_count(), 0);
        prop_assert_eq!(store.live_bytes(), 0);
    }

    /// Block-store chunks tile the record index space exactly and respect
    /// the chunk-size bound (except single oversized records).
    #[test]
    fn block_store_tiles_input(
        sizes in proptest::collection::vec(1u64..200, 1..500),
        chunk in 32u64..512,
        nodes in 1usize..12,
    ) {
        let bs = BlockStore::split(sizes.iter().copied(), chunk, nodes);
        let mut next = 0usize;
        for c in bs.chunks() {
            prop_assert_eq!(c.range.start, next);
            prop_assert!(c.node < nodes);
            // A chunk either fits the bound or holds a single big record.
            prop_assert!(c.bytes <= chunk || c.len() == 1);
            let expect: u64 = sizes[c.range.clone()].iter().sum();
            prop_assert_eq!(c.bytes, expect);
            next = c.range.end;
        }
        prop_assert_eq!(next, sizes.len());
        prop_assert_eq!(bs.total_bytes(), sizes.iter().sum::<u64>());
    }

    /// Pair sizes are additive and stable under cloning.
    #[test]
    fn pair_size_additive(k in proptest::collection::vec(any::<u8>(), 0..64),
                          v in proptest::collection::vec(any::<u8>(), 0..256)) {
        let p = Pair::new(Key::new(k.clone()), Value::new(v.clone()));
        prop_assert_eq!(p.size(), (k.len() + v.len()) as u64 + 8);
        prop_assert_eq!(p.clone().size(), p.size());
    }
}
