//! Property-based tests for the storage substrate: byte conservation and
//! partition completeness under arbitrary record streams.

use opa_common::{Key, Pair, StatePair, Value};
use opa_simio::{BlockStore, BucketManager, SpillStore};
use proptest::prelude::*;

fn tuple(k: u64, len: usize) -> StatePair {
    StatePair::new(Key::from_u64(k), Value::new(vec![0xAB; len]))
}

proptest! {
    /// Every record pushed into a bucket manager comes back exactly once,
    /// from the bucket it was pushed to, in push order; written bytes on
    /// flushes equal read bytes on take.
    #[test]
    fn bucket_manager_conserves_records(
        recs in proptest::collection::vec((0u64..500, 1usize..120), 1..300),
        h in 1usize..8,
        buffer in 64u64..2048,
    ) {
        let mut m = BucketManager::new(h, buffer);
        let mut expected: Vec<Vec<(u64, usize)>> = vec![Vec::new(); h];
        let mut written = 0u64;
        for &(k, len) in &recs {
            let b = (k as usize) % h;
            expected[b].push((k, len));
            written += m.push(b, tuple(k, len)).written;
        }
        written += m.seal().written;
        let mut read = 0u64;
        for (b, exp) in expected.iter().enumerate() {
            let (got, op) = m.take_bucket(b);
            read += op.read;
            let got: Vec<(u64, usize)> = got
                .iter()
                .map(|t| (t.key.as_u64().unwrap(), t.state.len()))
                .collect();
            prop_assert_eq!(&got, exp, "bucket {} contents differ", b);
        }
        prop_assert_eq!(written, read, "flushed bytes must equal read bytes");
        prop_assert_eq!(m.total_spilled(), 0, "take_bucket resets accounting");
    }

    /// Spill files round-trip their records and sizes.
    #[test]
    fn spill_store_roundtrip(
        runs in proptest::collection::vec(
            proptest::collection::vec((0u64..100, 1usize..64), 1..40),
            1..10,
        ),
    ) {
        let mut store: SpillStore<StatePair> = SpillStore::new();
        let mut ids = Vec::new();
        let mut total_written = 0u64;
        for run in &runs {
            let records: Vec<StatePair> = run.iter().map(|&(k, l)| tuple(k, l)).collect();
            let (id, op) = store.write_file(records);
            total_written += op.written;
            ids.push(id);
        }
        prop_assert_eq!(store.live_count(), runs.len());
        prop_assert_eq!(store.total_written(), total_written);
        for (id, run) in ids.into_iter().zip(&runs) {
            let (file, op) = store.take_file(id).expect("live file");
            prop_assert_eq!(file.records.len(), run.len());
            prop_assert_eq!(op.read, file.bytes);
        }
        prop_assert_eq!(store.live_count(), 0);
        prop_assert_eq!(store.live_bytes(), 0);
    }

    /// Block-store chunks tile the record index space exactly and respect
    /// the chunk-size bound (except single oversized records).
    #[test]
    fn block_store_tiles_input(
        sizes in proptest::collection::vec(1u64..200, 1..500),
        chunk in 32u64..512,
        nodes in 1usize..12,
    ) {
        let bs = BlockStore::split(sizes.iter().copied(), chunk, nodes);
        let mut next = 0usize;
        for c in bs.chunks() {
            prop_assert_eq!(c.range.start, next);
            prop_assert!(c.node < nodes);
            // A chunk either fits the bound or holds a single big record.
            prop_assert!(c.bytes <= chunk || c.len() == 1);
            let expect: u64 = sizes[c.range.clone()].iter().sum();
            prop_assert_eq!(c.bytes, expect);
            next = c.range.end;
        }
        prop_assert_eq!(next, sizes.len());
        prop_assert_eq!(bs.total_bytes(), sizes.iter().sum::<u64>());
    }

    /// Pair sizes are additive and stable under cloning.
    #[test]
    fn pair_size_additive(k in proptest::collection::vec(any::<u8>(), 0..64),
                          v in proptest::collection::vec(any::<u8>(), 0..256)) {
        let p = Pair::new(Key::new(k.clone()), Value::new(v.clone()));
        prop_assert_eq!(p.size(), (k.len() + v.len()) as u64 + 8);
        prop_assert_eq!(p.clone().size(), p.size());
    }
}

/// Payload sizes straddling the inline/heap boundary of `Key`/`Value`
/// (0, 21, 22 inline; 23, 1024 heap) — every serialization surface must
/// round-trip all of them bit-exactly.
const BOUNDARY_SIZES: [usize; 5] = [0, 21, 22, 23, 1024];

fn boundary_pairs() -> Vec<Pair> {
    let mut out = Vec::new();
    for (i, &kn) in BOUNDARY_SIZES.iter().enumerate() {
        for (j, &vn) in BOUNDARY_SIZES.iter().enumerate() {
            // Mix constructors so both representations hit the codec.
            let key = if (i + j) % 2 == 0 {
                Key::from_slice(&vec![i as u8 + 1; kn])
            } else {
                Key::forced_heap(vec![i as u8 + 1; kn])
            };
            let value = Value::from_slice(&vec![j as u8; vn]);
            out.push(Pair::new(key, value));
        }
    }
    out
}

/// The spill codec round-trips every boundary payload size, and decoded
/// records compare equal whichever representation encoded them.
#[test]
fn codec_roundtrips_boundary_sizes() {
    use opa_simio::codec::{decode_run, decode_state_run, encode_run, encode_state_run};
    let pairs = boundary_pairs();
    let back = decode_run(&encode_run(&pairs)).expect("run decodes");
    assert_eq!(back, pairs);
    let states: Vec<StatePair> = pairs
        .iter()
        .map(|p| StatePair::new(p.key.clone(), p.value.clone()))
        .collect();
    let back = decode_state_run(&encode_state_run(&states)).expect("state run decodes");
    assert_eq!(back, states);
}

/// Checkpoint sections round-trip boundary-size pair and state runs.
#[test]
fn checkpoint_sections_roundtrip_boundary_sizes() {
    use opa_simio::ckpt::{decode_sections, encode_sections, Section};
    let pairs = boundary_pairs();
    let states: Vec<StatePair> = pairs
        .iter()
        .map(|p| StatePair::new(p.key.clone(), p.value.clone()))
        .collect();
    let sections = vec![
        Section::Bytes(vec![7; 3]),
        Section::Nums(vec![0, u64::MAX, 42]),
        Section::Pairs(pairs),
        Section::States(states),
    ];
    let back = decode_sections(&encode_sections(&sections)).expect("sections decode");
    assert_eq!(back, sections);
}

proptest! {
    /// Arbitrary payloads (lengths biased around the inline cap) survive
    /// the spill codec bit-exactly, in order.
    #[test]
    fn codec_roundtrips_arbitrary_payloads(
        recs in proptest::collection::vec(
            (proptest::collection::vec(any::<u8>(), 0..48),
             proptest::collection::vec(any::<u8>(), 0..48),
             any::<bool>()),
            0..40),
    ) {
        use opa_simio::codec::{decode_run, encode_run};
        let pairs: Vec<Pair> = recs
            .iter()
            .map(|(k, v, heap)| {
                let key = if *heap {
                    Key::forced_heap(k.clone())
                } else {
                    Key::from_slice(k)
                };
                Pair::new(key, Value::from_slice(v))
            })
            .collect();
        let back = decode_run(&encode_run(&pairs)).expect("run decodes");
        prop_assert_eq!(back, pairs);
    }
}
