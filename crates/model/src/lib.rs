//! # opa-model
//!
//! The paper's analytical model of Hadoop (§3), implemented verbatim:
//!
//! - [`lambda`] — the multi-pass-merge cost function `λ_F(n, b)` (Eq. 2)
//!   together with an *exact* simulator of the merge tree of Fig. 3, used
//!   to validate the closed form;
//! - [`io_model`] — Proposition 3.1 (bytes read/written per node, Eq. 1,
//!   with the `U_1..U_5` decomposition) and Proposition 3.2 (number of I/O
//!   requests, Eq. 3);
//! - [`time_model`] — the combined time measurement
//!   `T = c_byte·U + c_seek·S + c_start·D/(CN)` (Eq. 4) with the paper's
//!   constants (80 MB/s sequential access, 4 ms seek, 100 ms map startup);
//! - [`optimizer`] — parameter selection per §3.2: the largest `C` with
//!   `C·K_m ≤ B_m`, a one-pass merge factor, and a grid search minimizing
//!   `T` over `(C, F)`;
//! - [`hash_model`] — the hash frameworks' own I/O analysis (§4):
//!   hybrid-hash staging for MR-hash, the `Δ`-vs-memory regimes of
//!   INC-hash, and FREQUENT's combine-work guarantee for DINC-hash.
//!
//! The model deliberately predicts a *time measurement*, not wall-clock
//! running time: the paper validates it by showing matching **trends** as
//! `C` and `F` vary (Fig. 4(a)), which is exactly what `repro fig4a`
//! reproduces against the OPA engine.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod hash_model;
pub mod io_model;
pub mod lambda;
pub mod optimizer;
pub mod time_model;

pub use io_model::{IoBytesBreakdown, ModelInput};
pub use lambda::{lambda_f, MergeTreeSim};
pub use optimizer::{GridPoint, Optimizer, Recommendation};
pub use time_model::{CostConstants, TimeBreakdown};
