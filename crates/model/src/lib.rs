//! # opa-model
//!
//! The paper's analytical model of Hadoop (§3), implemented verbatim:
//!
//! - [`lambda`] — the multi-pass-merge cost function `λ_F(n, b)` (Eq. 2)
//!   together with an *exact* simulator of the merge tree of Fig. 3, used
//!   to validate the closed form;
//! - [`io_model`] — Proposition 3.1 (bytes read/written per node, Eq. 1,
//!   with the `U_1..U_5` decomposition) and Proposition 3.2 (number of I/O
//!   requests, Eq. 3);
//! - [`time_model`] — the combined time measurement
//!   `T = c_byte·U + c_seek·S + c_start·D/(CN)` (Eq. 4) with the paper's
//!   constants (80 MB/s sequential access, 4 ms seek, 100 ms map startup);
//! - [`optimizer`] — parameter selection per §3.2: the largest `C` with
//!   `C·K_m ≤ B_m`, a one-pass merge factor, and a grid search minimizing
//!   `T` over `(C, F)`;
//! - [`hash_model`] — the hash frameworks' own I/O analysis (§4):
//!   hybrid-hash staging for MR-hash, the `Δ`-vs-memory regimes of
//!   INC-hash, and FREQUENT's combine-work guarantee for DINC-hash.
//!
//! The model deliberately predicts a *time measurement*, not wall-clock
//! running time: the paper validates it by showing matching **trends** as
//! `C` and `F` vary (Fig. 4(a)), which is exactly what `repro fig4a`
//! reproduces against the OPA engine.
//!
//! ```
//! use opa_common::{HardwareSpec, SystemSettings, WorkloadSpec, MB};
//! use opa_model::{lambda_f, ModelInput};
//!
//! // Table 2's three parameter groups: (R, C, F), (D, K_m, K_r), (N, B_m, B_r).
//! let input = ModelInput::new(
//!     SystemSettings::stock_scaled(),            // Hadoop defaults, 1/1024 scale
//!     WorkloadSpec::new(24 * MB, 1.0, 1.0),      // sessionization-like
//!     HardwareSpec::paper_cluster_scaled(),      // the 10-node cluster
//! )
//! .expect("valid model input");
//!
//! // Proposition 3.1: per-node bytes, decomposed into U_1..U_5.
//! let bytes = input.io_bytes();
//! assert!(bytes.total() >= bytes.u1 + bytes.u5);
//!
//! // Proposition 3.2: per-node I/O request count.
//! assert!(input.io_requests() > 0.0);
//!
//! // Eq. 2: the merge cost λ_F grows superlinearly in the run count.
//! assert!(lambda_f(40.0, 1.0, 10) > 2.0 * lambda_f(20.0, 1.0, 10));
//! ```
//!
//! To check these predictions against a *measured* run, enable tracing on
//! a job and hand the rollup to `opa-trace`'s drift checker
//! (`opa run … --drift` from the CLI); `OBSERVABILITY.md` maps every
//! model term to its measured counterpart.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod gamma;
pub mod hash_model;
pub mod io_model;
pub mod lambda;
pub mod optimizer;
pub mod time_model;

pub use io_model::{CombineModel, IoBytesBreakdown, ModelInput};
pub use lambda::{lambda_f, MergeTreeSim};
pub use optimizer::{GridPoint, Optimizer, Recommendation};
pub use time_model::{CostConstants, TimeBreakdown};
