//! Parameter optimization per §3.2 of the paper.
//!
//! Two closed-form recommendations plus a grid search:
//!
//! 1. **Chunk size** — the best `C` is the maximum that keeps the map
//!    output in the sort buffer: `C·K_m ≤ B_m` ([`recommended_chunk`]).
//! 2. **Merge factor** — raising `F` to the number of initial sorted runs
//!    at a reducer gives a single-pass merge, past which nothing improves
//!    ([`recommended_merge_factor`]).
//! 3. **Grid search** — [`Optimizer::grid_search`] evaluates Eq. 4 over a
//!    `(C, F)` grid (the Fig. 4(a) surface) and returns the minimizer.
//!
//! For `R` the paper recommends keeping `R` at the number of reduce slots:
//! a second wave of reducers must re-read map output from disk
//! ([`Recommendation::reducers_per_node`] just echoes the slot count).

use crate::io_model::ModelInput;
use crate::time_model::CostConstants;
use opa_common::{HardwareSpec, SystemSettings, WorkloadSpec};
use serde::{Deserialize, Serialize};

/// The largest chunk size whose map output still fits the map buffer:
/// `max C s.t. C·K_m ≤ B_m`.
pub fn recommended_chunk(km: f64, map_buffer: u64) -> u64 {
    assert!(km > 0.0 && km.is_finite(), "K_m must be positive");
    (map_buffer as f64 / km).floor() as u64
}

/// The smallest merge factor giving a one-pass merge: the number of initial
/// sorted runs a reducer accumulates, `⌈β⌉` (at least 2).
pub fn recommended_merge_factor(
    workload: &WorkloadSpec,
    hardware: &HardwareSpec,
    r: usize,
) -> usize {
    let beta = workload.input_size as f64 * workload.km
        / (hardware.nodes as f64 * r as f64 * hardware.reduce_buffer as f64);
    (beta.ceil() as usize).max(2)
}

/// One evaluated grid point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridPoint {
    /// Chunk size `C` (bytes).
    pub chunk_size: u64,
    /// Merge factor `F`.
    pub merge_factor: usize,
    /// Modeled time `T` (seconds, Eq. 4).
    pub modeled_time: f64,
}

/// Result of a full optimization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Recommendation {
    /// Chosen chunk size.
    pub chunk_size: u64,
    /// Chosen merge factor.
    pub merge_factor: usize,
    /// Reducers per node (= reduce slots; see §3.2(3)).
    pub reducers_per_node: usize,
    /// Modeled time at the chosen point.
    pub modeled_time: f64,
}

/// Grid-search optimizer over `(C, F)`.
#[derive(Debug, Clone)]
pub struct Optimizer {
    workload: WorkloadSpec,
    hardware: HardwareSpec,
    constants: CostConstants,
}

impl Optimizer {
    /// Creates an optimizer for a workload on given hardware.
    pub fn new(workload: WorkloadSpec, hardware: HardwareSpec, constants: CostConstants) -> Self {
        Optimizer {
            workload,
            hardware,
            constants,
        }
    }

    /// Evaluates Eq. 4 at one `(C, F)` point.
    pub fn evaluate(
        &self,
        chunk_size: u64,
        merge_factor: usize,
        r: usize,
    ) -> opa_common::Result<GridPoint> {
        let input = ModelInput::new(
            SystemSettings {
                reducers_per_node: r,
                chunk_size,
                merge_factor,
            },
            self.workload,
            self.hardware,
        )?;
        Ok(GridPoint {
            chunk_size,
            merge_factor,
            modeled_time: input.time_measurement(&self.constants).total(),
        })
    }

    /// Evaluates the full grid (the Fig. 4(a) surface) and returns every
    /// point, row-major in `chunks × factors` order.
    pub fn grid_search(
        &self,
        chunks: &[u64],
        factors: &[usize],
        r: usize,
    ) -> opa_common::Result<Vec<GridPoint>> {
        let mut out = Vec::with_capacity(chunks.len() * factors.len());
        for &c in chunks {
            for &f in factors {
                out.push(self.evaluate(c, f, r)?);
            }
        }
        Ok(out)
    }

    /// Runs the complete §3.2 recipe: closed-form chunk recommendation,
    /// one-pass merge factor, `R` = reduce slots, refined by a local grid
    /// search around the closed-form point.
    pub fn optimize(&self) -> opa_common::Result<Recommendation> {
        let r = self.hardware.reduce_slots;
        let c_star = recommended_chunk(self.workload.km, self.hardware.map_buffer);
        let f_star = recommended_merge_factor(&self.workload, &self.hardware, r);

        // Candidate chunks: fractions and small multiples of the
        // closed-form optimum; candidate factors: around one-pass.
        let chunks: Vec<u64> = [c_star / 4, c_star / 2, c_star, c_star * 2, c_star * 4]
            .into_iter()
            .filter(|&c| c > 0)
            .collect();
        let factors: Vec<usize> = [2, f_star / 2, f_star, f_star * 2]
            .into_iter()
            .filter(|&f| f >= 2)
            .collect();

        let grid = self.grid_search(&chunks, &factors, r)?;
        let best = grid
            .iter()
            .min_by(|a, b| a.modeled_time.partial_cmp(&b.modeled_time).expect("finite"))
            .expect("grid is non-empty");
        Ok(Recommendation {
            chunk_size: best.chunk_size,
            merge_factor: best.merge_factor,
            reducers_per_node: r,
            modeled_time: best.modeled_time,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opa_common::units::{GB, MB};

    fn paper_hw() -> HardwareSpec {
        HardwareSpec {
            nodes: 10,
            map_buffer: 140 * MB,
            reduce_buffer: 260 * MB,
            map_slots: 4,
            reduce_slots: 4,
        }
    }

    #[test]
    fn chunk_recommendation_fills_buffer() {
        assert_eq!(recommended_chunk(1.0, 140 * MB), 140 * MB);
        assert_eq!(recommended_chunk(2.0, 140 * MB), 70 * MB);
        assert_eq!(recommended_chunk(0.5, 100 * MB), 200 * MB);
    }

    #[test]
    fn merge_factor_is_one_pass() {
        // β ≈ 9.55 for the paper's 97 GB setup → F = 10.
        let w = WorkloadSpec::new(97 * GB, 1.0, 1.0);
        assert_eq!(recommended_merge_factor(&w, &paper_hw(), 4), 10);
        // Tiny workload: floor of 2.
        let tiny = WorkloadSpec::new(MB, 1.0, 1.0);
        assert_eq!(recommended_merge_factor(&tiny, &paper_hw(), 4), 2);
    }

    #[test]
    fn optimize_beats_stock_settings() {
        let w = WorkloadSpec::new(97 * GB, 1.0, 1.0);
        let opt = Optimizer::new(w, paper_hw(), CostConstants::default());
        let rec = opt.optimize().unwrap();
        let stock = opt.evaluate(64 * MB, 10, 4).unwrap();
        assert!(
            rec.modeled_time <= stock.modeled_time,
            "optimizer ({:.0}s) worse than stock ({:.0}s)",
            rec.modeled_time,
            stock.modeled_time
        );
        assert_eq!(rec.reducers_per_node, 4);
    }

    #[test]
    fn grid_is_row_major_and_complete() {
        let w = WorkloadSpec::new(GB, 1.0, 1.0);
        let opt = Optimizer::new(w, paper_hw(), CostConstants::default());
        let grid = opt
            .grid_search(&[32 * MB, 64 * MB], &[4, 8, 16], 4)
            .unwrap();
        assert_eq!(grid.len(), 6);
        assert_eq!(grid[0].chunk_size, 32 * MB);
        assert_eq!(grid[0].merge_factor, 4);
        assert_eq!(grid[5].chunk_size, 64 * MB);
        assert_eq!(grid[5].merge_factor, 16);
    }

    #[test]
    fn evaluate_propagates_invalid_config() {
        let w = WorkloadSpec::new(GB, 1.0, 1.0);
        let opt = Optimizer::new(w, paper_hw(), CostConstants::default());
        assert!(opt.evaluate(64 * MB, 1, 4).is_err());
        assert!(opt.evaluate(0, 10, 4).is_err());
    }

    #[test]
    #[should_panic(expected = "K_m must be positive")]
    fn recommended_chunk_rejects_bad_km() {
        let _ = recommended_chunk(0.0, MB);
    }
}
