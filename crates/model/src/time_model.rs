//! The combined time measurement of Eq. 4.
//!
//! `T = c_byte·U + c_seek·S + c_start·D/(CN)` — a linear combination of
//! sequential-transfer time, seek time, and map-task startup cost. The
//! paper sets `c_byte` from 80 MB/s sequential disk access, `c_seek` to
//! 4 ms, and `c_start` to 100 ms; those are the defaults here.

use crate::io_model::ModelInput;
use serde::{Deserialize, Serialize};

/// The three constants of Eq. 4.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostConstants {
    /// Seconds per byte of sequential I/O (`c_byte`).
    pub c_byte: f64,
    /// Seconds per I/O request (`c_seek`).
    pub c_seek: f64,
    /// Seconds to start one map task (`c_start`).
    pub c_start: f64,
}

impl Default for CostConstants {
    /// The paper's constants: 80 MB/s, 4 ms seek, 100 ms startup.
    fn default() -> Self {
        CostConstants {
            c_byte: 1.0 / (80.0 * 1024.0 * 1024.0),
            c_seek: 0.004,
            c_start: 0.1,
        }
    }
}

impl CostConstants {
    /// Constants matching a data-scaled simulation: the per-byte cost is
    /// multiplied by the scale factor (a scaled byte stands for `scale`
    /// real bytes), while seek and startup costs are count-proportional
    /// and stay as published. Use these when comparing model predictions
    /// against the OPA engine, which runs at 1/1024 of the paper's data
    /// sizes on the same virtual clock.
    pub fn scaled(scale: f64) -> Self {
        CostConstants {
            c_byte: scale / (80.0 * 1024.0 * 1024.0),
            ..CostConstants::default()
        }
    }
}

/// The Eq. 4 measurement, decomposed into its three cost sources.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeBreakdown {
    /// `c_byte · U` — sequential transfer time.
    pub byte_time: f64,
    /// `c_seek · S` — seek time.
    pub seek_time: f64,
    /// `c_start · D/(CN)` — map startup time.
    pub startup_time: f64,
}

impl TimeBreakdown {
    /// `T` in seconds.
    pub fn total(&self) -> f64 {
        self.byte_time + self.seek_time + self.startup_time
    }
}

impl ModelInput {
    /// Evaluates Eq. 4 under the given constants.
    pub fn time_measurement(&self, c: &CostConstants) -> TimeBreakdown {
        TimeBreakdown {
            byte_time: c.c_byte * self.io_bytes().total(),
            seek_time: c.c_seek * self.io_requests(),
            startup_time: c.c_start * self.maps_per_node(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opa_common::units::{GB, MB};
    use opa_common::{HardwareSpec, SystemSettings, WorkloadSpec};

    fn input(chunk: u64, f: usize) -> ModelInput {
        ModelInput::new(
            SystemSettings {
                reducers_per_node: 4,
                chunk_size: chunk,
                merge_factor: f,
            },
            WorkloadSpec::new(97 * GB, 1.0, 1.0),
            HardwareSpec {
                nodes: 10,
                map_buffer: 140 * MB,
                reduce_buffer: 260 * MB,
                map_slots: 4,
                reduce_slots: 4,
            },
        )
        .unwrap()
    }

    #[test]
    fn default_constants_match_paper() {
        let c = CostConstants::default();
        assert!((1.0 / c.c_byte / (1024.0 * 1024.0) - 80.0).abs() < 1e-9);
        assert_eq!(c.c_seek, 0.004);
        assert_eq!(c.c_start, 0.1);
    }

    #[test]
    fn startup_cost_dominates_tiny_chunks() {
        // §3.2(1): when C is very small, map startup dominates.
        let c = CostConstants::default();
        let t = input(MB, 16).time_measurement(&c);
        assert!(
            t.startup_time > t.byte_time * 0.5,
            "startup {:.1}s vs bytes {:.1}s",
            t.startup_time,
            t.byte_time
        );
    }

    #[test]
    fn jump_when_map_output_exceeds_buffer() {
        // §3.2(1): the time cost jumps once C·K_m > B_m.
        let c = CostConstants::default();
        let fits = input(140 * MB, 16).time_measurement(&c).total();
        let spills = input(141 * MB, 16).time_measurement(&c).total();
        assert!(
            spills > fits * 1.2,
            "no jump at buffer boundary: {fits:.0}s → {spills:.0}s"
        );
    }

    #[test]
    fn optimal_region_is_max_chunk_that_fits() {
        // Good performance at the maximum C with C·K_m ≤ B_m.
        let c = CostConstants::default();
        let best = input(140 * MB, 16).time_measurement(&c).total();
        for chunk in [4 * MB, 16 * MB, 512 * MB] {
            let other = input(chunk, 16).time_measurement(&c).total();
            assert!(
                best <= other * 1.001,
                "C=140 MB ({best:.0}s) beaten by C={} ({other:.0}s)",
                chunk / MB
            );
        }
    }

    #[test]
    fn f16_beats_f4_and_one_pass_saturates() {
        // Fig 4(b): time decreases F=4 → F=16, then flattens.
        let c = CostConstants::default();
        let t4 = input(64 * MB, 4).time_measurement(&c).total();
        let t16 = input(64 * MB, 16).time_measurement(&c).total();
        let t64 = input(64 * MB, 64).time_measurement(&c).total();
        assert!(t16 < t4);
        assert!((t64 - t16).abs() / t16 < 0.25, "t16={t16:.0} t64={t64:.0}");
    }

    #[test]
    fn breakdown_total_is_sum() {
        let c = CostConstants::default();
        let t = input(64 * MB, 10).time_measurement(&c);
        assert!((t.total() - (t.byte_time + t.seek_time + t.startup_time)).abs() < 1e-9);
    }
}
