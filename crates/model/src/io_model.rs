//! Propositions 3.1 and 3.2: per-node I/O bytes and request counts.
//!
//! Proposition 3.1 (Eq. 1) decomposes the bytes a node reads and writes
//! during a Hadoop job into the five `U_i` categories of Table 2:
//!
//! ```text
//! U = D/N · (1 + K_m + K_m·K_r)
//!   + 2D/(CN) · λ_F(C·K_m/B_m, B_m) · 1[C·K_m > B_m]
//!   + 2R · λ_F(D·K_m/(N·R·B_r), B_r)
//! ```
//!
//! Proposition 3.2 (Eq. 3) counts sequential I/O requests, with
//! `α = C·K_m/B_m` and `β = D·K_m/(N·R·B_r)`:
//!
//! ```text
//! S = D/(CN) · (α + 1 + 1[C·K_m > B_m]·(λ_F(α,1)(√F+1)² + α − 1))
//!   + R · (β·K_r·(√F+1) − β·√F + λ_F(β,1)(√F+1)²)
//! ```
//!
//! One published-formula refinement, documented in DESIGN.md: the reduce
//! spill term of Eq. 1 is gated on `β > 1` (reduce input actually exceeding
//! the shuffle buffer), symmetric with the explicit map-side indicator —
//! the paper's evaluation never exercises β ≤ 1 so the formula as printed
//! leaves the gate implicit.

use crate::lambda::lambda_f;
use opa_common::{HardwareSpec, SystemSettings, WorkloadSpec};
use serde::{Deserialize, Serialize};

/// Everything the model needs: the three Table 2 sections.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelInput {
    /// Part (1): `R`, `C`, `F`.
    pub system: SystemSettings,
    /// Part (2): `D`, `K_m`, `K_r`.
    pub workload: WorkloadSpec,
    /// Part (3): `N`, `B_m`, `B_r`.
    pub hardware: HardwareSpec,
}

impl ModelInput {
    /// Bundles and validates the three sections.
    pub fn new(
        system: SystemSettings,
        workload: WorkloadSpec,
        hardware: HardwareSpec,
    ) -> opa_common::Result<Self> {
        system.validate()?;
        workload.validate()?;
        hardware.validate()?;
        Ok(ModelInput {
            system,
            workload,
            hardware,
        })
    }

    /// `α = C·K_m / B_m` — sorted runs per map task under external sort.
    pub fn alpha(&self) -> f64 {
        self.system.chunk_size as f64 * self.workload.km / self.hardware.map_buffer as f64
    }

    /// `β = D·K_m / (N·R·B_r)` — initial sorted runs per reduce task.
    pub fn beta(&self) -> f64 {
        self.workload.input_size as f64 * self.workload.km
            / (self.hardware.nodes as f64
                * self.system.reducers_per_node as f64
                * self.hardware.reduce_buffer as f64)
    }

    /// Map tasks per node, `D / (C·N)`.
    pub fn maps_per_node(&self) -> f64 {
        self.workload.input_size as f64
            / (self.system.chunk_size as f64 * self.hardware.nodes as f64)
    }

    /// Whether a map task's output exceeds its buffer (`C·K_m > B_m`),
    /// forcing external sort.
    pub fn map_spills(&self) -> bool {
        self.system.chunk_size as f64 * self.workload.km > self.hardware.map_buffer as f64
    }

    /// Proposition 3.1: per-node bytes, decomposed.
    pub fn io_bytes(&self) -> IoBytesBreakdown {
        let d = self.workload.input_size as f64;
        let n = self.hardware.nodes as f64;
        let km = self.workload.km;
        let kr = self.workload.kr;
        let r = self.system.reducers_per_node as f64;
        let f = self.system.merge_factor;

        let u1 = d / n;
        let u3 = d * km / n;
        let u5 = d * km * kr / n;

        let u2 = if self.map_spills() {
            2.0 * self.maps_per_node() * lambda_f(self.alpha(), self.hardware.map_buffer as f64, f)
        } else {
            0.0
        };

        let beta = self.beta();
        let u4 = if beta > 1.0 {
            2.0 * r * lambda_f(beta, self.hardware.reduce_buffer as f64, f)
        } else {
            0.0
        };

        IoBytesBreakdown { u1, u2, u3, u4, u5 }
    }

    /// Proposition 3.2: number of sequential I/O requests per node.
    pub fn io_requests(&self) -> f64 {
        let f = self.system.merge_factor;
        let sqrt_f = (f as f64).sqrt();
        let alpha = self.alpha();
        let beta = self.beta();
        let kr = self.workload.kr;
        let r = self.system.reducers_per_node as f64;

        let map_indicator = if self.map_spills() {
            lambda_f(alpha, 1.0, f) * (sqrt_f + 1.0).powi(2) + alpha - 1.0
        } else {
            0.0
        };
        let map_term = self.maps_per_node() * (alpha + 1.0 + map_indicator);

        let reduce_term = if beta > 1.0 {
            r * (beta * kr * (sqrt_f + 1.0) - beta * sqrt_f
                + lambda_f(beta, 1.0, f) * (sqrt_f + 1.0).powi(2))
        } else {
            // In-memory reduce: one shuffle write-out per output partition
            // plus one read per mapper's partition, dominated by the output
            // term below.
            r * (beta * kr * (sqrt_f + 1.0)).max(1.0)
        };

        (map_term + reduce_term).max(0.0)
    }
}

/// Combiner-ratio model: predicted shuffle bytes under the three combine
/// scopes, as a function of key skew, scope granularity and the node
/// staging budget.
///
/// The underlying quantity is the expected number of distinct keys among
/// `n` i.i.d. draws from a Zipf(`s`) distribution over `keys` ranks
/// (`P(rank k) ∝ 1/(k+1)^s`, matching the workload generators):
/// `E[distinct(n)] = Σ_k 1 − (1 − p_k)^n`. A combining stage over a set
/// of draws ships exactly that set's distinct keys, so the predicted
/// shuffle volume is the expected distinct count at the stage's
/// granularity times the combined pair size:
///
/// - **off** ships every raw pair — `pairs · b`;
/// - **task** combines within each map task —
///   `maps · E[distinct(pairs/maps)] · b`;
/// - **node** combines across all of a node's tasks, flushing its staging
///   table `ν` times (resident post-combine volume over the budget) —
///   `nodes · ν · E[distinct(pairs/(nodes·ν))] · b`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CombineModel {
    /// Raw map-output pairs before any combining (cluster-wide).
    pub pairs: f64,
    /// Serialized bytes of one combined pair (key + value + record
    /// overhead; combining is size-preserving for counter-style values).
    pub pair_bytes: f64,
    /// Distinct keys in the workload's key space.
    pub keys: u64,
    /// Zipf exponent of key popularity (0 = uniform).
    pub zipf: f64,
    /// Map tasks in the job (task-scope combining granularity).
    pub maps: f64,
    /// Simulated nodes (node-scope combining granularity).
    pub nodes: f64,
    /// Node staging-table byte budget (`ClusterSpec::node_combine_buffer`);
    /// exceeding it splits a node's combining into multiple flushes.
    pub stage_budget: f64,
}

impl CombineModel {
    /// Expected distinct keys among `n` i.i.d. Zipf draws:
    /// `Σ_k 1 − (1 − p_k)^n`, computed with `exp(n·ln(1−p))` for
    /// stability at hot ranks.
    pub fn expected_distinct(&self, n: f64) -> f64 {
        if n <= 0.0 {
            return 0.0;
        }
        let ranks = self.keys.max(1);
        let mut h = 0.0;
        for k in 1..=ranks {
            h += 1.0 / (k as f64).powf(self.zipf);
        }
        let mut distinct = 0.0;
        for k in 1..=ranks {
            let p = 1.0 / (k as f64).powf(self.zipf) / h;
            let miss = if p >= 1.0 {
                0.0
            } else {
                (n * (1.0 - p).ln()).exp()
            };
            distinct += 1.0 - miss;
        }
        distinct
    }

    /// Predicted flushes per node under node scope: the resident
    /// post-combine volume of an unbounded node table over the staging
    /// budget, at least one.
    pub fn node_flushes(&self) -> f64 {
        let resident = self.expected_distinct(self.pairs / self.nodes.max(1.0)) * self.pair_bytes;
        if self.stage_budget <= 0.0 {
            return 1.0;
        }
        (resident / self.stage_budget).ceil().max(1.0)
    }

    /// Predicted cluster-wide shuffle bytes for one combine scope.
    pub fn shuffle_bytes(&self, scope: opa_common::CombineScope) -> f64 {
        use opa_common::CombineScope;
        match scope {
            CombineScope::Off => self.pairs * self.pair_bytes,
            CombineScope::Task => {
                let maps = self.maps.max(1.0);
                maps * self.expected_distinct(self.pairs / maps) * self.pair_bytes
            }
            CombineScope::Node => {
                let nodes = self.nodes.max(1.0);
                let nu = self.node_flushes();
                nodes * nu * self.expected_distinct(self.pairs / (nodes * nu)) * self.pair_bytes
            }
        }
    }

    /// Predicted combine ratio (shipped over raw bytes) for one scope.
    pub fn ratio(&self, scope: opa_common::CombineScope) -> f64 {
        let raw = self.pairs * self.pair_bytes;
        if raw <= 0.0 {
            return 1.0;
        }
        self.shuffle_bytes(scope) / raw
    }
}

/// Per-node I/O bytes in the five Table 2 categories.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IoBytesBreakdown {
    /// `U_1` — map input.
    pub u1: f64,
    /// `U_2` — map internal spills (external sort).
    pub u2: f64,
    /// `U_3` — map output.
    pub u3: f64,
    /// `U_4` — reduce internal spills (multi-pass merge).
    pub u4: f64,
    /// `U_5` — reduce output.
    pub u5: f64,
}

impl IoBytesBreakdown {
    /// `U = U_1 + … + U_5`.
    pub fn total(&self) -> f64 {
        self.u1 + self.u2 + self.u3 + self.u4 + self.u5
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opa_common::units::{GB, MB};

    /// The paper's §3.2 validation setup: D=97 GB, K_m=K_r=1, N=10,
    /// B_m=140 MB, B_r=260 MB, R=4.
    fn paper_setup(chunk: u64, f: usize) -> ModelInput {
        ModelInput::new(
            SystemSettings {
                reducers_per_node: 4,
                chunk_size: chunk,
                merge_factor: f,
            },
            WorkloadSpec::new(97 * GB, 1.0, 1.0),
            HardwareSpec {
                nodes: 10,
                map_buffer: 140 * MB,
                reduce_buffer: 260 * MB,
                map_slots: 4,
                reduce_slots: 4,
            },
        )
        .unwrap()
    }

    #[test]
    fn passthrough_components_match_hand_calculation() {
        let m = paper_setup(64 * MB, 10);
        let b = m.io_bytes();
        let d_per_node = 9.7 * GB as f64;
        assert!((b.u1 - d_per_node).abs() < GB as f64 * 0.01);
        assert!((b.u3 - d_per_node).abs() < GB as f64 * 0.01);
        assert!((b.u5 - d_per_node).abs() < GB as f64 * 0.01);
    }

    #[test]
    fn no_map_spill_when_output_fits_buffer() {
        // 64 MB chunks, K_m = 1 → 64 MB output < 140 MB buffer.
        let m = paper_setup(64 * MB, 10);
        assert!(!m.map_spills());
        assert_eq!(m.io_bytes().u2, 0.0);
    }

    #[test]
    fn map_spill_kicks_in_past_buffer() {
        let m = paper_setup(256 * MB, 10);
        assert!(m.map_spills());
        let b = m.io_bytes();
        assert!(b.u2 > 0.0);
        // Spill cost at least write+read of the overflow runs once.
        assert!(b.u2 >= 2.0 * m.maps_per_node() * m.system.chunk_size as f64 * 0.9);
    }

    #[test]
    fn reduce_spill_always_present_for_big_jobs() {
        // β = 97 GB / (10·4·260 MB) ≈ 9.55 ≫ 1.
        let m = paper_setup(64 * MB, 10);
        assert!(m.beta() > 9.0 && m.beta() < 10.0, "β = {}", m.beta());
        assert!(m.io_bytes().u4 > 0.0);
    }

    #[test]
    fn bigger_merge_factor_reduces_u4() {
        // The Fig 4(b) trend: F 4 → 16 cuts multi-pass-merge bytes.
        let u4_f4 = paper_setup(64 * MB, 4).io_bytes().u4;
        let u4_f16 = paper_setup(64 * MB, 16).io_bytes().u4;
        assert!(
            u4_f16 < u4_f4,
            "U4 did not shrink: F=4 {u4_f4}, F=16 {u4_f16}"
        );
        // Beyond one-pass (F ≥ β) no further gain.
        let u4_f16b = paper_setup(64 * MB, 16).io_bytes().u4;
        let u4_f64 = paper_setup(64 * MB, 64).io_bytes().u4;
        assert!((u4_f64 - u4_f16b).abs() / u4_f16b < 0.35);
    }

    #[test]
    fn requests_grow_when_chunks_shrink() {
        // Small chunks → many map tasks → more requests.
        let small = paper_setup(8 * MB, 10).io_requests();
        let big = paper_setup(64 * MB, 10).io_requests();
        assert!(small > big);
    }

    #[test]
    fn smaller_f_fewer_seeks_more_bytes() {
        // §3.2(2): a small F incurs more I/O bytes but fewer disk seeks.
        let f4 = paper_setup(64 * MB, 4);
        let f16 = paper_setup(64 * MB, 16);
        assert!(f4.io_bytes().total() > f16.io_bytes().total());
        assert!(f4.io_requests() < f16.io_requests());
    }

    #[test]
    fn breakdown_total_sums_components() {
        let b = paper_setup(128 * MB, 8).io_bytes();
        let total = b.u1 + b.u2 + b.u3 + b.u4 + b.u5;
        assert_eq!(b.total(), total);
    }

    #[test]
    fn invalid_input_rejected() {
        let r = ModelInput::new(
            SystemSettings {
                reducers_per_node: 0,
                chunk_size: MB,
                merge_factor: 10,
            },
            WorkloadSpec::new(GB, 1.0, 1.0),
            HardwareSpec::paper_cluster_full(),
        );
        assert!(r.is_err());
    }

    fn combine_setup(zipf: f64, stage_budget: f64) -> CombineModel {
        CombineModel {
            pairs: 100_000.0,
            pair_bytes: 24.0,
            keys: 5_000,
            zipf,
            maps: 50.0,
            nodes: 5.0,
            stage_budget,
        }
    }

    #[test]
    fn combine_scopes_monotone() {
        use opa_common::CombineScope;
        let m = combine_setup(1.0, 1e12);
        let off = m.shuffle_bytes(CombineScope::Off);
        let task = m.shuffle_bytes(CombineScope::Task);
        let node = m.shuffle_bytes(CombineScope::Node);
        assert!(node < task, "node {node} !< task {task}");
        assert!(task < off, "task {task} !< off {off}");
        assert!((off - 100_000.0 * 24.0).abs() < 1e-6);
    }

    #[test]
    fn higher_skew_compresses_more() {
        use opa_common::CombineScope;
        let mild = combine_setup(0.5, 1e12).ratio(CombineScope::Node);
        let hot = combine_setup(1.5, 1e12).ratio(CombineScope::Node);
        assert!(hot < mild, "hot {hot} !< mild {mild}");
        assert!(hot > 0.0 && mild <= 1.0);
    }

    #[test]
    fn tight_budget_means_more_flushes_and_bytes() {
        use opa_common::CombineScope;
        let roomy = combine_setup(1.0, 1e12);
        let tight = combine_setup(1.0, 1024.0);
        assert_eq!(roomy.node_flushes(), 1.0);
        assert!(tight.node_flushes() > roomy.node_flushes());
        assert!(tight.shuffle_bytes(CombineScope::Node) > roomy.shuffle_bytes(CombineScope::Node));
        // Even flushing often, node scope never ships more than off.
        assert!(tight.shuffle_bytes(CombineScope::Node) <= tight.shuffle_bytes(CombineScope::Off));
    }

    #[test]
    fn expected_distinct_sane() {
        let m = combine_setup(0.0, 1e12); // uniform
        assert_eq!(m.expected_distinct(0.0), 0.0);
        // One draw hits exactly one key.
        assert!((m.expected_distinct(1.0) - 1.0).abs() < 1e-9);
        // Many draws approach (and never exceed) the key-space size.
        let huge = m.expected_distinct(1e9);
        assert!(huge <= 5_000.0 + 1e-6);
        assert!(huge > 4_999.0);
        // Monotone in n.
        assert!(m.expected_distinct(10_000.0) > m.expected_distinct(1_000.0));
    }
}
