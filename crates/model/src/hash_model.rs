//! I/O analysis of the hash frameworks (§4.1–§4.3 of the paper).
//!
//! - **MR-hash** follows hybrid hash join [Shapiro 86]: with reducer input
//!   `|D_r|` and memory `B`, no recursive partitioning is needed once
//!   `B ≥ 2√|D_r|`, and the staged traffic is `2(|D_r| − |D_1|)` bytes
//!   (everything but the memory-resident bucket is written once and read
//!   once).
//! - **INC-hash** follows Hybrid Cache [Hellerstein & Naughton 96]: with
//!   total distinct key-state volume `Δ`, I/O vanishes when `B ≥ Δ`; for
//!   `√Δ < B < Δ` the tuples of resident keys collapse in memory and the
//!   rest are written out and read back exactly once.
//! - **DINC-hash** adds the FREQUENT guarantee: at least
//!   `M' = Σ_{i≤s} max(0, f_i − M/(s+1))` tuples combine in memory, so at
//!   most `M − M' + s` tuples spill.

/// Minimum reducer memory (bytes) above which MR-hash never needs
/// recursive partitioning: `2√|D_r|`.
pub fn mr_hash_min_memory(reducer_input: u64) -> u64 {
    (2.0 * (reducer_input as f64).sqrt()).ceil() as u64
}

/// MR-hash staged bytes (written + read): `2(|D_r| − |D_1|)`, where the
/// memory-resident bucket `D_1` holds `memory − h·write_buffer` bytes and
/// `h` buckets of `≈ memory` each cover the remainder.
pub fn mr_hash_staged_bytes(reducer_input: u64, memory: u64, write_buffer: u64) -> u64 {
    if reducer_input <= memory {
        return 0;
    }
    let h = reducer_input.div_ceil(memory.max(1));
    let d1 = memory.saturating_sub(h * write_buffer);
    2 * reducer_input.saturating_sub(d1)
}

/// INC-hash staged bytes: zero when all distinct key-state pairs fit;
/// otherwise the non-resident fraction of the *tuple* volume is written
/// once and read once. `resident_tuple_fraction` is the share of tuples
/// whose keys are memory-resident (workload-dependent: the mass of the
/// first-observed keys).
pub fn inc_hash_staged_bytes(
    tuple_volume: u64,
    distinct_state_volume: u64,
    memory: u64,
    resident_tuple_fraction: f64,
) -> u64 {
    if memory >= distinct_state_volume {
        return 0;
    }
    let staged = tuple_volume as f64 * (1.0 - resident_tuple_fraction.clamp(0.0, 1.0));
    (2.0 * staged).round() as u64
}

/// FREQUENT's combine-work guarantee for DINC-hash: with monitored slot
/// count `s`, total tuples `M`, and the key-frequency vector (descending),
/// at least `M' = Σ_{i≤s} max(0, f_i − M/(s+1))` combine operations happen
/// in memory.
pub fn dinc_guaranteed_combines(frequencies_desc: &[u64], s: usize) -> u64 {
    let m: u64 = frequencies_desc.iter().sum();
    let slack = m / (s as u64 + 1);
    frequencies_desc
        .iter()
        .take(s)
        .map(|&f| f.saturating_sub(slack))
        .sum()
}

/// Upper bound on tuples DINC writes to disk: `M − M' + s`.
pub fn dinc_max_spilled_tuples(frequencies_desc: &[u64], s: usize) -> u64 {
    let m: u64 = frequencies_desc.iter().sum();
    m - dinc_guaranteed_combines(frequencies_desc, s) + s as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mr_hash_memory_threshold() {
        // |Dr| = 1 GiB → 2√|Dr| = 64 KiB.
        assert_eq!(mr_hash_min_memory(1 << 30), 1 << 16);
        assert_eq!(mr_hash_min_memory(0), 0);
    }

    #[test]
    fn mr_hash_staging_shrinks_with_memory() {
        let dr = 10 << 20;
        let small = mr_hash_staged_bytes(dr, 1 << 20, 8 << 10);
        let large = mr_hash_staged_bytes(dr, 4 << 20, 8 << 10);
        assert!(small > large);
        assert_eq!(mr_hash_staged_bytes(dr, dr, 8 << 10), 0);
        // Everything staged at most twice.
        assert!(small <= 2 * dr);
    }

    #[test]
    fn inc_hash_zero_when_states_fit() {
        assert_eq!(inc_hash_staged_bytes(1 << 30, 1 << 20, 1 << 20, 0.5), 0);
        let staged = inc_hash_staged_bytes(1 << 20, 1 << 20, 1 << 10, 0.75);
        // 25% of a MiB, twice.
        assert_eq!(staged, (1 << 20) / 2);
    }

    #[test]
    fn dinc_guarantee_matches_paper_formula() {
        // f = [100, 50, 10, 10, 10, 10], M = 190, s = 2 → slack = 63.
        let f = [100u64, 50, 10, 10, 10, 10];
        let m_prime = dinc_guaranteed_combines(&f, 2);
        assert_eq!(m_prime, 100 - 63); // 50 < 63 contributes nothing
        assert_eq!(dinc_max_spilled_tuples(&f, 2), 190 - 37 + 2);
    }

    #[test]
    fn dinc_guarantee_degrades_gracefully_on_flat_data() {
        // No key above M/(s+1): the guarantee is zero — the paper's
        // "does not give any guarantee if there are no [popular] keys".
        let f = [10u64; 20];
        assert_eq!(dinc_guaranteed_combines(&f, 4), 0);
        // And improves monotonically with more slots.
        let skewed: Vec<u64> = (1..=40u64).rev().map(|k| k * k).collect();
        let mut prev = 0;
        for s in [1usize, 2, 4, 8, 16] {
            let g = dinc_guaranteed_combines(&skewed, s);
            assert!(g >= prev, "guarantee not monotone in s");
            prev = g;
        }
    }
}
