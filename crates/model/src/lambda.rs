//! The multi-pass-merge cost function `λ_F` and its exact validation.
//!
//! Hadoop's reducer (and a map task doing external sort) spills sorted runs
//! of size `b` to disk; whenever the number of on-disk files reaches
//! `2F − 1`, a background thread merges the **smallest** `F` of them into
//! one. The paper analyzes the resulting tree of files (Fig. 3) and derives
//! the closed form (Eq. 2):
//!
//! ```text
//! λ_F(n, b) = ( n² / (2F(F−1)) + 3n/2 − F² / (2(F−1)) ) · b
//! ```
//!
//! which is the total size of all files ever resident on disk; every file is
//! written once and read once, so multi-pass merge moves `2·λ_F(n, b)`
//! bytes. [`MergeTreeSim`] replays the policy exactly (sizes only) so tests
//! can check the closed form where the tree is complete and bound the error
//! elsewhere.

/// The closed-form `λ_F(n, b)` of Eq. 2.
///
/// `n` is the number of initial sorted runs, `b` their size in bytes, `f`
/// the merge factor. For `n ≤ 0` the cost is zero; the formula itself
/// evaluates to `n·b` whenever no background merge fires (e.g. `n = F`),
/// matching the write-once/read-once cost of the runs alone.
///
/// # Panics
/// Panics if `f < 2`.
pub fn lambda_f(n: f64, b: f64, f: usize) -> f64 {
    assert!(f >= 2, "merge factor must be >= 2, got {f}");
    if n <= 0.0 {
        return 0.0;
    }
    let ff = f as f64;
    let quad = n * n / (2.0 * ff * (ff - 1.0));
    let lin = 1.5 * n;
    let konst = ff * ff / (2.0 * (ff - 1.0));
    // The closed form can dip below the trivial n·b floor for small n
    // (between tree-complete points); never report less than the
    // write+read-once cost of the initial runs.
    ((quad + lin - konst) * b).max(n * b)
}

/// Exact size-only replay of Hadoop's background-merge policy.
///
/// Files are modelled by their sizes. Runs of size `b` arrive one at a
/// time; when `2F − 1` files are on disk the smallest `F` merge into one
/// (reading and re-writing their bytes). [`MergeTreeSim::finish`] performs
/// the final-merge *completion* passes (merging until ≤ `2F − 1` files
/// remain, which for the background policy is already true, then reading
/// everything once for the final merge that feeds the reduce function).
#[derive(Debug)]
pub struct MergeTreeSim {
    f: usize,
    /// Live on-disk file sizes.
    files: Vec<f64>,
    /// Bytes written to disk so far (initial runs + merge outputs).
    written: f64,
    /// Bytes read from disk so far (merge inputs).
    read: f64,
    merges: usize,
}

impl MergeTreeSim {
    /// Creates a simulator with merge factor `f`.
    ///
    /// # Panics
    /// Panics if `f < 2`.
    pub fn new(f: usize) -> Self {
        assert!(f >= 2, "merge factor must be >= 2, got {f}");
        MergeTreeSim {
            f,
            files: Vec::new(),
            written: 0.0,
            read: 0.0,
            merges: 0,
        }
    }

    /// Spills one initial run of `b` bytes, triggering a background merge
    /// if the file count reaches `2F − 1`.
    pub fn add_run(&mut self, b: f64) {
        self.files.push(b);
        self.written += b;
        if self.files.len() >= 2 * self.f - 1 {
            self.merge_smallest();
        }
    }

    fn merge_smallest(&mut self) {
        // Sort descending; the smallest F files sit at the tail.
        self.files
            .sort_unstable_by(|a, b| b.partial_cmp(a).expect("sizes are finite"));
        let tail = self.files.split_off(self.files.len() - self.f);
        let merged: f64 = tail.iter().sum();
        self.read += merged;
        self.written += merged;
        self.files.push(merged);
        self.merges += 1;
    }

    /// Completes the job: merges until at most `2F − 1` files remain (a
    /// no-op under the background policy), then reads every remaining file
    /// once for the final merge. Returns the total `(written, read)` bytes
    /// of the whole merge history.
    pub fn finish(mut self) -> MergeCost {
        while self.files.len() > 2 * self.f - 1 {
            self.merge_smallest();
        }
        let final_read: f64 = self.files.iter().sum();
        self.read += final_read;
        MergeCost {
            written: self.written,
            read: self.read,
            background_merges: self.merges,
            final_fan_in: self.files.len(),
        }
    }

    /// Live file count.
    pub fn live_files(&self) -> usize {
        self.files.len()
    }
}

/// Outcome of an exact merge-tree replay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MergeCost {
    /// Total bytes written (initial runs + merge outputs).
    pub written: f64,
    /// Total bytes read (merge inputs + final merge).
    pub read: f64,
    /// Number of background merges performed.
    pub background_merges: usize,
    /// Files feeding the final merge.
    pub final_fan_in: usize,
}

impl MergeCost {
    /// Total I/O traffic of the merge phase.
    pub fn total(&self) -> f64 {
        self.written + self.read
    }
}

/// Replays `n` runs of size `b` with factor `f` and returns the exact cost.
pub fn exact_merge_cost(n: usize, b: f64, f: usize) -> MergeCost {
    let mut sim = MergeTreeSim::new(f);
    for _ in 0..n {
        sim.add_run(b);
    }
    sim.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tree-complete run counts: n = (F + (F−1)(h−2))·F for h ≥ 2.
    fn complete_n(f: usize, h: usize) -> usize {
        (f + (f - 1) * (h - 2)) * f
    }

    #[test]
    fn lambda_equals_nb_when_no_merge_fires() {
        // n = F runs never trigger a background merge (needs 2F−1).
        for f in [3usize, 4, 8, 16] {
            let n = f as f64;
            let got = lambda_f(n, 1.0, f);
            assert!((got - n).abs() < 1e-9, "F={f}: λ={got}, want {n}");
        }
    }

    #[test]
    fn closed_form_matches_exact_sim_at_tree_complete_points() {
        for f in [3usize, 4, 5, 8] {
            for h in 2..6 {
                let n = complete_n(f, h);
                let exact = exact_merge_cost(n, 1.0, f);
                // λ counts every file once; exact total is write+read = 2λ.
                let lam = lambda_f(n as f64, 1.0, f);
                let rel = (exact.total() - 2.0 * lam).abs() / exact.total();
                assert!(
                    rel < 0.12,
                    "F={f} h={h} n={n}: exact={} 2λ={} rel={rel}",
                    exact.total(),
                    2.0 * lam
                );
            }
        }
    }

    #[test]
    fn lambda_monotone_in_n() {
        let f = 10;
        let mut prev = 0.0;
        for n in 1..200 {
            let v = lambda_f(n as f64, 1.0, f);
            assert!(v >= prev, "λ not monotone at n={n}");
            prev = v;
        }
    }

    #[test]
    fn larger_f_never_costs_more_bytes() {
        // Fewer merge passes with bigger F ⇒ fewer bytes (the paper's
        // Fig 4(b) trend: time decreases from F=4 to F=16).
        for n in [50usize, 120, 400] {
            let small = exact_merge_cost(n, 1.0, 4).total();
            let big = exact_merge_cost(n, 1.0, 16).total();
            assert!(
                big <= small + 1e-9,
                "n={n}: F=16 cost {big} > F=4 cost {small}"
            );
        }
    }

    #[test]
    fn one_pass_merge_when_f_at_least_runs() {
        // F ≥ n ⇒ no background merge; only the final read.
        let cost = exact_merge_cost(12, 2.0, 16);
        assert_eq!(cost.background_merges, 0);
        assert_eq!(cost.written, 24.0);
        assert_eq!(cost.read, 24.0);
        assert_eq!(cost.final_fan_in, 12);
    }

    #[test]
    fn background_merge_fires_at_2f_minus_1() {
        let f = 4;
        let mut sim = MergeTreeSim::new(f);
        for i in 0..(2 * f - 2) {
            sim.add_run(1.0);
            assert_eq!(sim.live_files(), i + 1, "premature merge");
        }
        sim.add_run(1.0);
        // 2F−1 files reached → smallest F merged → F files remain.
        assert_eq!(sim.live_files(), f);
    }

    #[test]
    fn merge_picks_smallest_files() {
        // With one big file and many small ones, the big file must survive
        // the first background merge untouched.
        let f = 3;
        let mut sim = MergeTreeSim::new(f);
        sim.add_run(100.0);
        for _ in 0..4 {
            sim.add_run(1.0);
        }
        // 5 files = 2F−1 → merge 3 smallest (1,1,1) → files {100, 1, 3}.
        let mut live = sim.files.clone();
        live.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(live, vec![1.0, 3.0, 100.0]);
    }

    #[test]
    #[should_panic(expected = "merge factor")]
    fn lambda_rejects_f_below_2() {
        let _ = lambda_f(10.0, 1.0, 1);
    }

    #[test]
    fn zero_runs_zero_cost() {
        assert_eq!(lambda_f(0.0, 1.0, 4), 0.0);
        let c = exact_merge_cost(0, 1.0, 4);
        assert_eq!(c.total(), 0.0);
    }
}
