//! Coverage (γ) analysis for the incremental frameworks (§4.3).
//!
//! For a key with true frequency `t` offered to a FREQUENT monitor with
//! `s` slots out of `M` total tuples, the paper lower-bounds the fraction
//! of the key's tuples that combine in memory by
//! `γ = t / (t + M/(s+1))` — the *first-come* coverage guarantee, which
//! holds for whichever keys happen to hold slots. The engine additionally
//! measures occupancy directly ([`measured_occupancy`]): the fraction of
//! *all* offered tuples absorbed into resident state. A frequency-gated
//! admission policy exists to push the measured value above what
//! first-come occupancy achieves at the same memory; the drift checker
//! validates the bookkeeping identity ([`admission_consistent`]) that
//! both quantities rest on.

/// The paper's first-come coverage lower bound `γ = t/(t + M/(s+1))` for
/// a key with frequency `t` among `offered` total tuples and `slots`
/// monitor slots. Returns 1.0 for a degenerate empty stream.
pub fn first_come_bound(t: u64, offered: u64, slots: u64) -> f64 {
    if offered == 0 || t == 0 {
        return if offered == 0 { 1.0 } else { 0.0 };
    }
    let slack = offered as f64 / (slots as f64 + 1.0);
    t as f64 / (t as f64 + slack)
}

/// Measured occupancy γ: the fraction of offered tuples absorbed into
/// memory-resident state (1.0 for an empty stream). This is the
/// empirical counterpart of [`first_come_bound`] aggregated over the
/// whole reducer rather than one key.
pub fn measured_occupancy(absorbed: u64, offered: u64) -> f64 {
    if offered == 0 {
        return 1.0;
    }
    absorbed as f64 / offered as f64
}

/// The bookkeeping identity every admission-instrumented reducer must
/// satisfy: each offered tuple is either absorbed or rejected, so
/// `absorbed + rejected == offered`. The drift checker treats a violation
/// as trace corruption.
pub fn admission_consistent(offered: u64, absorbed: u64, rejected: u64) -> bool {
    absorbed.checked_add(rejected) == Some(offered)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_matches_paper_formula() {
        // t = 100, M = 1000, s = 9 → slack = 100 → γ = 0.5.
        assert!((first_come_bound(100, 1000, 9) - 0.5).abs() < 1e-12);
        assert_eq!(first_come_bound(0, 1000, 9), 0.0);
        assert_eq!(first_come_bound(5, 0, 9), 1.0);
    }

    #[test]
    fn bound_is_monotone_in_frequency_and_slots() {
        let mut prev = 0.0;
        for t in [1u64, 10, 100, 1000, 10_000] {
            let g = first_come_bound(t, 100_000, 63);
            assert!(g > prev, "γ not increasing in t at {t}");
            assert!(g < 1.0);
            prev = g;
        }
        let mut prev = 0.0;
        for s in [1u64, 7, 63, 511, 4095] {
            let g = first_come_bound(50, 100_000, s);
            assert!(g > prev, "γ not increasing in s at {s}");
            prev = g;
        }
    }

    #[test]
    fn measured_occupancy_edges() {
        assert_eq!(measured_occupancy(0, 0), 1.0);
        assert_eq!(measured_occupancy(0, 10), 0.0);
        assert!((measured_occupancy(7, 10) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn consistency_identity() {
        assert!(admission_consistent(10, 7, 3));
        assert!(!admission_consistent(10, 7, 2));
        assert!(admission_consistent(0, 0, 0));
        // Overflow-safe.
        assert!(!admission_consistent(0, u64::MAX, 1));
    }
}
