//! Property-based validation of the analytical model: the closed-form
//! `λ_F` must track the exact merge-policy replay for arbitrary inputs,
//! and the I/O model must behave sanely across the parameter space.

use opa_common::units::{GB, MB};
use opa_common::{HardwareSpec, SystemSettings, WorkloadSpec};
use opa_model::io_model::ModelInput;
use opa_model::lambda::{exact_merge_cost, lambda_f, MergeTreeSim};
use opa_model::time_model::CostConstants;
use proptest::prelude::*;

proptest! {
    /// The closed form tracks the exact policy replay. It is derived from
    /// the asymptotic tree of Fig. 3, so it is tight at tree-complete
    /// points (checked in unit tests at < 12%) and interpolates in
    /// between — 35% bounds it everywhere in the explored range.
    #[test]
    fn lambda_tracks_exact_policy(n in 4usize..400, f in 2usize..24, b in 1u64..4096) {
        let exact = exact_merge_cost(n, b as f64, f).total();
        let lam = 2.0 * lambda_f(n as f64, b as f64, f);
        prop_assert!(exact > 0.0);
        let rel = (lam - exact).abs() / exact;
        prop_assert!(rel < 0.35, "n={n} F={f}: λ {lam} vs exact {exact} (rel {rel:.3})");
    }

    /// Incremental replay equals batch replay (add_run is online).
    #[test]
    fn merge_sim_is_online(ns in proptest::collection::vec(1u64..64, 1..60), f in 2usize..12) {
        let mut sim = MergeTreeSim::new(f);
        for &b in &ns {
            sim.add_run(b as f64);
            prop_assert!(sim.live_files() < 2 * f - 1 || sim.live_files() <= ns.len());
        }
        let cost = sim.finish();
        // Conservation: bytes read during merges never exceed bytes written.
        prop_assert!(cost.read <= cost.written + ns.iter().sum::<u64>() as f64);
        prop_assert!(cost.final_fan_in < 2 * f);
    }

    /// The byte model is monotone in input size and never negative.
    #[test]
    fn io_bytes_monotone_in_d(
        d_gb in 1u64..512,
        chunk_mb in 1u64..256,
        f in 2usize..32,
        km in 1u32..30,
    ) {
        let km = km as f64 / 10.0;
        let mk = |d: u64| {
            ModelInput::new(
                SystemSettings {
                    reducers_per_node: 4,
                    chunk_size: chunk_mb * MB,
                    merge_factor: f,
                },
                WorkloadSpec::new(d, km, 1.0),
                HardwareSpec::paper_cluster_full(),
            )
            .unwrap()
        };
        let small = mk(d_gb * GB).io_bytes();
        let large = mk(2 * d_gb * GB).io_bytes();
        prop_assert!(small.total() >= 0.0);
        prop_assert!(large.total() >= small.total());
        // Pass-through components scale exactly linearly.
        prop_assert!((large.u1 - 2.0 * small.u1).abs() < 1.0);
        prop_assert!((large.u3 - 2.0 * small.u3).abs() < 1.0);
    }

    /// The Eq. 4 measurement is finite and positive wherever the
    /// configuration validates.
    #[test]
    fn time_measurement_is_finite(
        d_gb in 1u64..256,
        chunk_mb in 1u64..512,
        f in 2usize..64,
        r in 1usize..8,
    ) {
        let input = ModelInput::new(
            SystemSettings {
                reducers_per_node: r,
                chunk_size: chunk_mb * MB,
                merge_factor: f,
            },
            WorkloadSpec::new(d_gb * GB, 1.0, 1.0),
            HardwareSpec::paper_cluster_full(),
        )
        .unwrap();
        let t = input.time_measurement(&CostConstants::default());
        prop_assert!(t.total().is_finite());
        prop_assert!(t.total() > 0.0);
        prop_assert!(t.byte_time >= 0.0 && t.seek_time >= 0.0 && t.startup_time >= 0.0);
    }
}
