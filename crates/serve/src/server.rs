//! The resident job server: deterministic interleaved wave scheduling.
//!
//! Each admitted job runs the unmodified stream driver on its own OS
//! thread. The driver's micro-batch pause points become the server's
//! **wave boundaries**: at every pause the job thread parks, reports in,
//! and waits for a grant. The server advances the fleet in **rounds** —
//! it waits until *every* running job is parked (or finished), then
//! issues one `Continue` grant per job **in admission order**. Queries
//! are answered while parked, against the live [`BatchCtl`] state.
//!
//! Determinism falls out of two facts:
//!
//! 1. each job's engine run is untouched — the pause callback only
//!    observes state and blocks, so its [`opa_core::job::JobOutcome`] is
//!    bit-identical to the same job run solo, at any thread count (the
//!    engine already guarantees that for any callback);
//! 2. the server mutates shared state (books, queue, trace) only at
//!    quiescent points — full barriers where no job thread is running —
//!    and always iterates jobs in admission (id) order, so the grant
//!    sequence and the serving-layer trace are pure functions of the
//!    submission sequence.
//!
//! Job threads run concurrently *between* barriers (that is the point:
//! wall-clock overlap), but nothing the server emits depends on which
//! thread parks first.

use crate::admission::{Admission, AdmissionOutcome, ServeConfig, TenantBook};
use crate::dlq::{QuarantineEntry, QuarantineFile};
use opa_common::fault::FaultConfig;
use opa_common::{Error, Key, Result, Value};
use opa_core::api::Job;
use opa_core::cluster::{ClusterSpec, Framework};
use opa_core::job::{JobInput, PoisonedRecord};
use opa_core::reduce::TopEntry;
use opa_stream::{BatchCtl, StreamJobBuilder, StreamOutcome, StreamProgress};
use opa_trace::{ServeJobState, TraceEvent};
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Per-job configuration carried by a submission.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Reduce-side framework.
    pub framework: Framework,
    /// Cluster the job simulates.
    pub cluster: ClusterSpec,
    /// Micro-batch count `k` — the job's wave count.
    pub batches: usize,
    /// Execution-layer threading for this job's engine.
    pub exec: opa_common::ExecConfig,
    /// Map output/input ratio hint.
    pub km_hint: f64,
    /// Reduce-side admission policy.
    pub admission: opa_common::AdmissionPolicy,
    /// Fault injection (including `udf_poison_rate` for DLQ testing).
    pub faults: FaultConfig,
    /// Whether the job captures a structured engine trace.
    pub trace: bool,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            framework: Framework::IncHash,
            cluster: ClusterSpec::tiny(),
            batches: 4,
            exec: opa_common::ExecConfig::sequential(),
            km_hint: 1.0,
            admission: opa_common::AdmissionPolicy::Off,
            faults: FaultConfig::disabled(),
            trace: false,
        }
    }
}

/// A live-state query against a paused (or finished) job.
#[derive(Debug, Clone)]
pub enum ServeQuery {
    /// Point lookup of a key's resident partial aggregate.
    Lookup(Key),
    /// Batched point lookups: answers every key in one channel
    /// round-trip against the *same* parked state snapshot, instead of
    /// paying one `Lookup` round-trip (and potentially interleaved
    /// steps) per key.
    LookupBatch(Vec<Key>),
    /// The DINC top-k answer with its γ coverage bound.
    TopK(usize),
    /// Progress / watermark metadata.
    Progress,
}

/// Answer to a [`ServeQuery`].
#[derive(Debug, Clone)]
pub enum ServeAnswer {
    /// Resident value, if the framework keeps queryable state for the key.
    Value(Option<Value>),
    /// One entry per [`ServeQuery::LookupBatch`] key, in request order.
    Values(Vec<Option<Value>>),
    /// Global top-k entries with the weakest per-reducer γ bound.
    TopK(Option<(Vec<TopEntry>, f64)>),
    /// Progress snapshot at the pause point.
    Progress(StreamProgress),
}

/// Where a job is in its server-side lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobPhase {
    /// Admitted, waiting for a tenant run slot.
    Waiting,
    /// Executing (parked at a wave boundary between rounds).
    Running,
    /// Completed successfully; outcome retained for queries and replay.
    Finished,
    /// Completed with an error.
    Failed,
    /// Refused at admission; never executed.
    Rejected,
}

/// One row of [`Server::status`].
#[derive(Debug, Clone)]
pub struct JobStatus {
    /// Server-assigned job id (admission order).
    pub job: u32,
    /// Owning tenant.
    pub tenant: u32,
    /// Human-readable label (job name).
    pub label: String,
    /// Lifecycle phase.
    pub phase: JobPhase,
    /// Waves granted so far.
    pub waves: u32,
    /// Last reported progress, if the job ever paused.
    pub progress: Option<StreamProgress>,
    /// Quarantined records (known once finished).
    pub dlq_entries: u64,
    /// Failure message for [`JobPhase::Failed`] / [`JobPhase::Rejected`].
    pub error: Option<String>,
}

/// Receipt returned by [`Server::submit`].
#[derive(Debug, Clone, Copy)]
pub struct SubmitReceipt {
    /// The assigned job id (also assigned to rejected submissions, so the
    /// trace names them).
    pub job: u32,
    /// Where the submission landed.
    pub outcome: AdmissionOutcome,
}

enum ToJob {
    Query {
        query: ServeQuery,
        reply: Sender<ServeAnswer>,
    },
    Continue,
}

enum FromJob {
    Paused {
        id: u32,
        progress: StreamProgress,
    },
    Done {
        id: u32,
        result: std::result::Result<Box<StreamOutcome>, String>,
    },
}

/// A re-runnable job closure: the server keeps it so a finished job can
/// be replayed (DLQ recovery) under a different fault configuration.
type Runner = Arc<
    dyn Fn(FaultConfig, &mut dyn FnMut(&mut BatchCtl<'_, '_>)) -> Result<StreamOutcome>
        + Send
        + Sync,
>;

struct JobEntry {
    tenant: u32,
    label: String,
    phase: JobPhase,
    paused: bool,
    progress: Option<StreamProgress>,
    cmd: Option<Sender<ToJob>>,
    handle: Option<JoinHandle<()>>,
    runner: Option<Runner>,
    faults: FaultConfig,
    waves: u32,
    submitted_round: u64,
    outcome: Option<Box<StreamOutcome>>,
    error: Option<String>,
    dlq_path: Option<PathBuf>,
    finalized: bool,
}

/// The resident multi-tenant job server. See the module docs for the
/// scheduling model.
pub struct Server {
    cfg: ServeConfig,
    admission: Admission,
    jobs: Vec<JobEntry>,
    wait_queue: VecDeque<u32>,
    round: u64,
    trace: Vec<TraceEvent>,
    dlq_dir: Option<PathBuf>,
    tx: Sender<FromJob>,
    rx: Receiver<FromJob>,
}

impl Server {
    /// Creates a server with the given sizing.
    pub fn new(cfg: ServeConfig) -> Server {
        let (tx, rx) = channel();
        Server {
            cfg,
            admission: Admission::default(),
            jobs: Vec::new(),
            wait_queue: VecDeque::new(),
            round: 0,
            trace: Vec::new(),
            dlq_dir: None,
            tx,
            rx,
        }
    }

    /// Directory quarantine files are written to on job completion, as
    /// `dlq-t<tenant>-j<job>.opaq`. Without it the DLQ stays in memory.
    pub fn dlq_dir(mut self, dir: impl Into<PathBuf>) -> Server {
        self.dlq_dir = Some(dir.into());
        self
    }

    /// Submits a job for `tenant`. Admission is decided synchronously;
    /// an admitted job with a free slot starts immediately and runs to
    /// its first wave boundary before this returns (so it is queryable).
    pub fn submit<J: Job + Clone + 'static>(
        &mut self,
        tenant: u32,
        job: J,
        input: Arc<JobInput>,
        spec: &JobSpec,
    ) -> Result<SubmitReceipt> {
        spec.faults.validate()?;
        let id = self.jobs.len() as u32;
        let label = job.name().to_string();
        let runner: Runner = {
            let spec = spec.clone();
            Arc::new(
                move |faults, on_batch: &mut dyn FnMut(&mut BatchCtl<'_, '_>)| {
                    StreamJobBuilder::new(job.clone())
                        .framework(spec.framework)
                        .cluster(spec.cluster)
                        .exec(spec.exec)
                        .km_hint(spec.km_hint)
                        .admission(spec.admission)
                        .faults(faults)
                        .batches(spec.batches)
                        .trace(spec.trace)
                        .run_stream(&input, on_batch)
                },
            )
        };
        let outcome = self.admission.decide(tenant, &self.cfg);
        let (phase, state, error) = match outcome {
            AdmissionOutcome::Started | AdmissionOutcome::Queued => {
                (JobPhase::Waiting, ServeJobState::Admitted, None)
            }
            AdmissionOutcome::RejectedQuota => (
                JobPhase::Rejected,
                ServeJobState::RejectedQuota,
                Some("rejected: tenant quota exhausted".to_string()),
            ),
            AdmissionOutcome::RejectedQueue => (
                JobPhase::Rejected,
                ServeJobState::RejectedQueue,
                Some("rejected: server queue full".to_string()),
            ),
        };
        self.trace.push(TraceEvent::ServeJob {
            t: self.round,
            tenant,
            job: id,
            state,
        });
        self.jobs.push(JobEntry {
            tenant,
            label,
            phase,
            paused: false,
            progress: None,
            cmd: None,
            handle: None,
            runner: Some(runner),
            faults: spec.faults,
            waves: 0,
            submitted_round: self.round,
            outcome: None,
            error,
            dlq_path: None,
            finalized: matches!(phase, JobPhase::Rejected),
        });
        match outcome {
            AdmissionOutcome::Started => {
                self.start_job(id);
                self.settle()?;
            }
            AdmissionOutcome::Queued => self.wait_queue.push_back(id),
            _ => {}
        }
        Ok(SubmitReceipt { job: id, outcome })
    }

    fn start_job(&mut self, id: u32) {
        self.trace.push(TraceEvent::ServeJob {
            t: self.round,
            tenant: self.jobs[id as usize].tenant,
            job: id,
            state: ServeJobState::Started,
        });
        let entry = &mut self.jobs[id as usize];
        entry.phase = JobPhase::Running;
        let (cmd_tx, cmd_rx) = channel::<ToJob>();
        entry.cmd = Some(cmd_tx);
        let runner = entry.runner.clone().expect("admitted job keeps its runner");
        let faults = entry.faults;
        let tx = self.tx.clone();
        entry.handle = Some(std::thread::spawn(move || {
            let mut on_batch = |ctl: &mut BatchCtl<'_, '_>| {
                let progress = ctl.progress();
                if tx.send(FromJob::Paused { id, progress }).is_err() {
                    // Server gone: free-run to completion.
                    return;
                }
                // A `Continue` grant or a dropped sender (server shutting
                // down) both release the wave boundary.
                while let Ok(ToJob::Query { query, reply }) = cmd_rx.recv() {
                    let _ = reply.send(answer_live(ctl, &query));
                }
            };
            let result = runner(faults, &mut on_batch)
                .map(Box::new)
                .map_err(|e| e.to_string());
            let _ = tx.send(FromJob::Done { id, result });
        }));
    }

    fn running_unparked(&self) -> usize {
        self.jobs
            .iter()
            .filter(|e| e.phase == JobPhase::Running && !e.paused)
            .count()
    }

    /// Runs the barrier: blocks until every running job is parked at a
    /// wave boundary or finished, finalizing completions and promoting
    /// waiting jobs into freed slots (FIFO per arrival, skipping tenants
    /// whose slots are still full) until the fleet is quiescent.
    fn settle(&mut self) -> Result<()> {
        loop {
            while self.running_unparked() > 0 {
                match self.rx.recv() {
                    Ok(FromJob::Paused { id, progress }) => {
                        let entry = &mut self.jobs[id as usize];
                        entry.paused = true;
                        entry.progress = Some(progress);
                    }
                    Ok(FromJob::Done { id, result }) => {
                        let entry = &mut self.jobs[id as usize];
                        entry.paused = false;
                        match result {
                            Ok(outcome) => {
                                entry.phase = JobPhase::Finished;
                                entry.outcome = Some(outcome);
                            }
                            Err(msg) => {
                                entry.phase = JobPhase::Failed;
                                entry.error = Some(msg);
                            }
                        }
                    }
                    Err(_) => {
                        return Err(Error::job(
                            "a job thread exited without reporting completion",
                        ));
                    }
                }
            }
            // Quiescent: finalize completions in admission order, then
            // promote waiters into the freed slots. Both mutate books and
            // trace deterministically — no job thread is running here.
            let mut acted = false;
            for id in 0..self.jobs.len() as u32 {
                let entry = &self.jobs[id as usize];
                if entry.finalized || !matches!(entry.phase, JobPhase::Finished | JobPhase::Failed)
                {
                    continue;
                }
                acted = true;
                self.finalize(id)?;
            }
            let mut i = 0;
            while i < self.wait_queue.len() {
                let id = self.wait_queue[i];
                let tenant = self.jobs[id as usize].tenant;
                if self.admission.slot_free(tenant, &self.cfg) {
                    self.wait_queue.remove(i);
                    let waited = self.round - self.jobs[id as usize].submitted_round;
                    self.admission.promote(tenant, waited);
                    self.start_job(id);
                    acted = true;
                } else {
                    i += 1;
                }
            }
            if !acted {
                return Ok(());
            }
        }
    }

    /// Books a completed job out: slot release, terminal trace event and
    /// quarantine-file write. Runs only at quiescent points, in id order.
    fn finalize(&mut self, id: u32) -> Result<()> {
        let entry = &mut self.jobs[id as usize];
        entry.finalized = true;
        entry.cmd = None;
        if let Some(h) = entry.handle.take() {
            h.join()
                .map_err(|_| Error::job(format!("job {id} thread panicked")))?;
        }
        let failed = entry.phase == JobPhase::Failed;
        let tenant = entry.tenant;
        self.admission.release(tenant, failed);
        self.trace.push(TraceEvent::ServeJob {
            t: self.round,
            tenant,
            job: id,
            state: if failed {
                ServeJobState::Failed
            } else {
                ServeJobState::Finished
            },
        });
        let entry = &self.jobs[id as usize];
        if let (Some(dir), Some(outcome)) = (&self.dlq_dir, &entry.outcome) {
            if !outcome.job.dlq.is_empty() {
                let path = dir.join(format!("dlq-t{tenant}-j{id}.opaq"));
                quarantine_of(
                    tenant,
                    id,
                    &entry.label,
                    entry.faults.seed,
                    &outcome.job.dlq,
                )
                .write_to(&path)?;
                self.jobs[id as usize].dlq_path = Some(path);
            }
        }
        Ok(())
    }

    /// Advances the fleet by one wave: grants every parked job its next
    /// micro-batch **in admission order**, then barriers until all of
    /// them park again. Returns `false` once no job is running or
    /// waiting (the server is drained).
    pub fn step(&mut self) -> Result<bool> {
        let parked: Vec<u32> = (0..self.jobs.len() as u32)
            .filter(|&id| {
                let e = &self.jobs[id as usize];
                e.phase == JobPhase::Running && e.paused
            })
            .collect();
        if parked.is_empty() && self.wait_queue.is_empty() {
            return Ok(false);
        }
        self.round += 1;
        for id in parked {
            let entry = &mut self.jobs[id as usize];
            entry.waves += 1;
            entry.paused = false;
            let wave = entry.waves;
            let tenant = entry.tenant;
            self.trace.push(TraceEvent::WaveGrant {
                t: self.round,
                tenant,
                job: id,
                wave,
            });
            let cmd = self.jobs[id as usize]
                .cmd
                .as_ref()
                .expect("running job keeps its command channel");
            cmd.send(ToJob::Continue)
                .map_err(|_| Error::job(format!("job {id} hung up mid-run")))?;
        }
        self.settle()?;
        Ok(true)
    }

    /// Steps until every admitted job has finished.
    pub fn run_to_completion(&mut self) -> Result<()> {
        while self.step()? {}
        Ok(())
    }

    /// Answers a query against `job`'s live state. A running job answers
    /// from its parked [`BatchCtl`] (resident partial aggregates); a
    /// finished job answers from its final outcome.
    pub fn query(&self, job: u32, query: &ServeQuery) -> Result<ServeAnswer> {
        let entry = self
            .jobs
            .get(job as usize)
            .ok_or_else(|| Error::job(format!("unknown job {job}")))?;
        match entry.phase {
            JobPhase::Running => {
                let cmd = entry.cmd.as_ref().expect("running job has a channel");
                let (reply_tx, reply_rx) = channel();
                cmd.send(ToJob::Query {
                    query: query.clone(),
                    reply: reply_tx,
                })
                .map_err(|_| Error::job(format!("job {job} hung up")))?;
                reply_rx
                    .recv()
                    .map_err(|_| Error::job(format!("job {job} dropped a query")))
            }
            JobPhase::Finished => {
                let outcome = entry.outcome.as_ref().expect("finished job has an outcome");
                Ok(answer_finished(entry, outcome, query))
            }
            JobPhase::Waiting => Err(Error::job(format!("job {job} is still queued"))),
            JobPhase::Failed => Err(Error::job(format!(
                "job {job} failed: {}",
                entry.error.as_deref().unwrap_or("unknown error")
            ))),
            JobPhase::Rejected => Err(Error::job(format!("job {job} was rejected"))),
        }
    }

    /// The quarantined records of a finished job.
    pub fn dlq(&self, job: u32) -> Result<&[PoisonedRecord]> {
        let entry = self
            .jobs
            .get(job as usize)
            .ok_or_else(|| Error::job(format!("unknown job {job}")))?;
        match &entry.outcome {
            Some(outcome) => Ok(&outcome.job.dlq),
            None => Err(Error::job(format!("job {job} has not finished"))),
        }
    }

    /// The quarantine file written for `job`, if any.
    pub fn dlq_path(&self, job: u32) -> Option<&Path> {
        self.jobs.get(job as usize)?.dlq_path.as_deref()
    }

    /// Replays a finished job with its poison rate zeroed — the "operator
    /// fixed the UDF" recovery path. Runs inline (solo) and returns the
    /// fresh outcome; the engine's determinism makes it bit-identical to
    /// a fault-free run of the same spec.
    pub fn replay_dlq(&mut self, job: u32) -> Result<Box<StreamOutcome>> {
        let entry = self
            .jobs
            .get(job as usize)
            .ok_or_else(|| Error::job(format!("unknown job {job}")))?;
        if entry.phase != JobPhase::Finished {
            return Err(Error::job(format!("job {job} has not finished")));
        }
        let entries = entry.outcome.as_ref().map_or(0, |o| o.job.dlq.len() as u64);
        let runner = entry.runner.clone().expect("finished job keeps its runner");
        let mut faults = entry.faults;
        faults.udf_poison_rate = 0.0;
        let tenant = entry.tenant;
        let outcome = runner(faults, &mut |_ctl| {})?;
        self.trace.push(TraceEvent::DlqReplay {
            t: self.round,
            tenant,
            job,
            entries,
        });
        Ok(Box::new(outcome))
    }

    /// The finished outcome of `job`, if it completed.
    pub fn outcome(&self, job: u32) -> Option<&StreamOutcome> {
        self.jobs.get(job as usize)?.outcome.as_deref()
    }

    /// One status row per submitted job, in admission order.
    pub fn status(&self) -> Vec<JobStatus> {
        self.jobs
            .iter()
            .enumerate()
            .map(|(id, e)| JobStatus {
                job: id as u32,
                tenant: e.tenant,
                label: e.label.clone(),
                phase: e.phase,
                waves: e.waves,
                progress: e.progress.clone(),
                dlq_entries: e.outcome.as_ref().map_or(0, |o| o.job.dlq.len() as u64),
                error: e.error.clone(),
            })
            .collect()
    }

    /// One tenant's admission book.
    pub fn book(&self, tenant: u32) -> Option<&TenantBook> {
        self.admission.book(tenant)
    }

    /// All tenant books in tenant order.
    pub fn books(&self) -> Vec<(u32, TenantBook)> {
        self.admission
            .books()
            .map(|(t, b)| (t, b.clone()))
            .collect()
    }

    /// The current scheduler round (waves granted so far).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The serving-layer trace: `serve_job` / `wave_grant` / `dlq_replay`
    /// events with scheduler-round timestamps, in emission order.
    pub fn trace(&self) -> &[TraceEvent] {
        &self.trace
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Unpark every surviving job thread (dropping its command channel
        // makes the pause callback return immediately) and join, so no
        // thread outlives the server.
        for entry in &mut self.jobs {
            entry.cmd = None;
        }
        for entry in &mut self.jobs {
            if let Some(h) = entry.handle.take() {
                let _ = h.join();
            }
        }
    }
}

fn answer_live(ctl: &BatchCtl<'_, '_>, query: &ServeQuery) -> ServeAnswer {
    match query {
        ServeQuery::Lookup(key) => ServeAnswer::Value(ctl.lookup(key)),
        ServeQuery::LookupBatch(keys) => {
            ServeAnswer::Values(keys.iter().map(|k| ctl.lookup(k)).collect())
        }
        ServeQuery::TopK(k) => ServeAnswer::TopK(ctl.top_k(*k)),
        ServeQuery::Progress => ServeAnswer::Progress(ctl.progress()),
    }
}

fn answer_finished(entry: &JobEntry, outcome: &StreamOutcome, query: &ServeQuery) -> ServeAnswer {
    match query {
        // After completion the resident state is gone; the final output
        // pairs are the authoritative answer.
        ServeQuery::Lookup(key) => ServeAnswer::Value(
            outcome
                .job
                .output
                .iter()
                .find(|p| &p.key == key)
                .map(|p| p.value.clone()),
        ),
        ServeQuery::LookupBatch(keys) => ServeAnswer::Values(
            keys.iter()
                .map(|key| {
                    outcome
                        .job
                        .output
                        .iter()
                        .find(|p| &p.key == key)
                        .map(|p| p.value.clone())
                })
                .collect(),
        ),
        ServeQuery::TopK(_) => ServeAnswer::TopK(None),
        ServeQuery::Progress => {
            ServeAnswer::Progress(entry.progress.clone().unwrap_or(StreamProgress {
                batches_sealed: outcome.batches,
                batches: outcome.batches,
                records_sealed: 0,
                total_records: 0,
                maps_completed: 0,
                maps_total: 0,
                watermark: None,
                sim_time: opa_common::units::SimTime::ZERO,
            }))
        }
    }
}

fn quarantine_of(
    tenant: u32,
    job: u32,
    label: &str,
    seed: u64,
    dlq: &[PoisonedRecord],
) -> QuarantineFile {
    QuarantineFile {
        tenant,
        job,
        job_name: label.to_string(),
        seed,
        entries: dlq
            .iter()
            .map(|p| QuarantineEntry {
                chunk: p.chunk,
                attempt: p.attempt,
                offset: p.offset,
                record: p.record.clone(),
            })
            .collect(),
    }
}
