//! # opa-serve — the resident multi-tenant job server
//!
//! The paper's platform is a *service*: analysts submit one-pass jobs
//! against shared cluster capacity and query incremental answers while
//! the jobs run. This crate supplies that serving layer on top of
//! `opa-stream`:
//!
//! - **admission control** ([`admission`]) — per-tenant run-slot quotas
//!   with a bounded shared wait queue; every submission is either
//!   admitted, queued (backpressure) or *explicitly* rejected, and
//!   `AdmissionStats`-style books reconcile the counters;
//! - **deterministic interleaved scheduling** ([`server`]) — each job
//!   runs the unmodified stream driver on its own thread; the server
//!   advances the fleet in waves, granting micro-batches in admission
//!   order at full barriers, so every job's outcome is bit-identical to
//!   its solo run and the serving trace is a pure function of the
//!   submission sequence;
//! - **live queries** — point lookups, DINC top-k and progress answered
//!   at wave boundaries against the paused engine state, through the
//!   same [`opa_stream::BatchCtl`] surface the stream callback sees;
//! - **a dead-letter queue** ([`dlq`]) — records a map UDF rejects are
//!   quarantined with full provenance (tenant, job, task, attempt,
//!   offset) to a CRC-guarded file instead of failing the job, and the
//!   job can be **replayed** with the poison fixed to recover the
//!   fault-free output.
//!
//! ```
//! use opa_serve::{JobSpec, ServeConfig, Server};
//! use opa_workloads::click_count::ClickCountJob;
//! use opa_workloads::clickstream::ClickStreamSpec;
//! use std::sync::Arc;
//!
//! let input = Arc::new(ClickStreamSpec::small().generate(42));
//! let mut server = Server::new(ServeConfig::default());
//! let spec = JobSpec::default();
//! let job = ClickCountJob { expected_users: 1000 };
//! let receipt = server
//!     .submit(0, job, Arc::clone(&input), &spec)
//!     .expect("admits");
//! server.run_to_completion().expect("drains");
//! assert!(server.outcome(receipt.job).is_some());
//! ```

#![warn(missing_docs)]

pub mod admission;
pub mod dlq;
pub mod server;

pub use admission::{Admission, AdmissionOutcome, ServeConfig, TenantBook};
pub use dlq::{QuarantineEntry, QuarantineFile};
pub use server::{JobPhase, JobSpec, JobStatus, ServeAnswer, ServeQuery, Server, SubmitReceipt};
