//! Admission control: per-tenant slot quotas with explicit backpressure.
//!
//! The server never silently drops a submission. Every `submit` lands in
//! exactly one of three outcomes, each visible in the tenant's book and
//! on the trace:
//!
//! - **admitted** — a run slot (or a queue seat) was available; the job
//!   either starts immediately or waits its turn in FIFO order;
//! - **rejected (quota)** — the tenant already holds its full allowance
//!   of running *and* waiting jobs; admitting more would let one tenant
//!   starve the rest;
//! - **rejected (queue)** — the shared wait queue is full; the server is
//!   saturated and pushes back regardless of tenant.
//!
//! The books mirror the reduce-side `AdmissionStats` idiom: monotone
//! counters that reconcile (`submitted = admitted + rejected_quota +
//! rejected_queue`), so tests and benches can assert conservation.

use std::collections::BTreeMap;

/// Server sizing knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Jobs a tenant may have *running* concurrently.
    pub slots_per_tenant: usize,
    /// Jobs a tenant may have *waiting* (beyond its running slots) before
    /// further submissions are rejected with `rejected_quota`.
    pub queue_per_tenant: usize,
    /// Total waiting jobs across all tenants before any submission is
    /// rejected with `rejected_queue`.
    pub queue_total: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            slots_per_tenant: 1,
            queue_per_tenant: 4,
            queue_total: 16,
        }
    }
}

/// Where a submission landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionOutcome {
    /// Admitted and started immediately (a run slot was free).
    Started,
    /// Admitted into the wait queue (backpressure, not rejection).
    Queued,
    /// Rejected: the tenant's running + waiting allowance is exhausted.
    RejectedQuota,
    /// Rejected: the shared wait queue is full.
    RejectedQueue,
}

/// One tenant's admission book — monotone counters plus live gauges.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantBook {
    /// Jobs ever submitted by this tenant.
    pub submitted: u64,
    /// Jobs admitted (started or queued).
    pub admitted: u64,
    /// Jobs rejected against the per-tenant allowance.
    pub rejected_quota: u64,
    /// Jobs rejected against the shared queue cap.
    pub rejected_queue: u64,
    /// Jobs that entered execution.
    pub started: u64,
    /// Jobs that finished successfully.
    pub finished: u64,
    /// Jobs that failed with an error.
    pub failed: u64,
    /// Currently running jobs (gauge).
    pub running: usize,
    /// Currently waiting jobs (gauge).
    pub waiting: usize,
    /// Total scheduler rounds admitted jobs spent waiting for a slot —
    /// the admission-wait numerator (`/ started` gives the mean).
    pub wait_rounds: u64,
}

impl TenantBook {
    /// Counter conservation: every submission is accounted exactly once.
    pub fn reconciles(&self) -> bool {
        self.submitted == self.admitted + self.rejected_quota + self.rejected_queue
    }
}

/// The admission controller: books per tenant plus the shared queue gauge.
#[derive(Debug, Default)]
pub struct Admission {
    books: BTreeMap<u32, TenantBook>,
    waiting_total: usize,
}

impl Admission {
    /// Decides one submission for `tenant` and updates the books. The
    /// caller performs the actual start/enqueue according to the outcome.
    pub fn decide(&mut self, tenant: u32, cfg: &ServeConfig) -> AdmissionOutcome {
        let waiting_total = self.waiting_total;
        let book = self.books.entry(tenant).or_default();
        book.submitted += 1;
        if book.running + book.waiting >= cfg.slots_per_tenant + cfg.queue_per_tenant {
            book.rejected_quota += 1;
            return AdmissionOutcome::RejectedQuota;
        }
        if book.running < cfg.slots_per_tenant {
            book.admitted += 1;
            book.started += 1;
            book.running += 1;
            return AdmissionOutcome::Started;
        }
        if waiting_total >= cfg.queue_total {
            book.rejected_queue += 1;
            return AdmissionOutcome::RejectedQueue;
        }
        book.admitted += 1;
        book.waiting += 1;
        self.waiting_total += 1;
        AdmissionOutcome::Queued
    }

    /// Whether `tenant` has a free run slot.
    pub fn slot_free(&self, tenant: u32, cfg: &ServeConfig) -> bool {
        self.books
            .get(&tenant)
            .is_none_or(|b| b.running < cfg.slots_per_tenant)
    }

    /// Moves one waiting job of `tenant` into a run slot, charging the
    /// rounds it spent in the queue.
    pub fn promote(&mut self, tenant: u32, waited_rounds: u64) {
        let book = self.books.entry(tenant).or_default();
        debug_assert!(book.waiting > 0, "promote without a waiting job");
        book.waiting -= 1;
        book.started += 1;
        book.running += 1;
        book.wait_rounds += waited_rounds;
        self.waiting_total = self.waiting_total.saturating_sub(1);
    }

    /// Releases `tenant`'s run slot when a job finishes or fails.
    pub fn release(&mut self, tenant: u32, failed: bool) {
        let book = self.books.entry(tenant).or_default();
        debug_assert!(book.running > 0, "release without a running job");
        book.running -= 1;
        if failed {
            book.failed += 1;
        } else {
            book.finished += 1;
        }
    }

    /// The book of one tenant, if it ever submitted.
    pub fn book(&self, tenant: u32) -> Option<&TenantBook> {
        self.books.get(&tenant)
    }

    /// All books, in tenant order (deterministic iteration).
    pub fn books(&self) -> impl Iterator<Item = (u32, &TenantBook)> {
        self.books.iter().map(|(&t, b)| (t, b))
    }

    /// Jobs currently waiting across all tenants.
    pub fn waiting_total(&self) -> usize {
        self.waiting_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quota_then_queue_then_rejection() {
        let cfg = ServeConfig {
            slots_per_tenant: 1,
            queue_per_tenant: 2,
            queue_total: 16,
        };
        let mut adm = Admission::default();
        assert_eq!(adm.decide(7, &cfg), AdmissionOutcome::Started);
        assert_eq!(adm.decide(7, &cfg), AdmissionOutcome::Queued);
        assert_eq!(adm.decide(7, &cfg), AdmissionOutcome::Queued);
        assert_eq!(adm.decide(7, &cfg), AdmissionOutcome::RejectedQuota);
        let book = adm.book(7).unwrap();
        assert_eq!(
            (book.submitted, book.admitted, book.rejected_quota),
            (4, 3, 1)
        );
        assert!(book.reconciles());
    }

    #[test]
    fn shared_queue_cap_pushes_back_across_tenants() {
        let cfg = ServeConfig {
            slots_per_tenant: 1,
            queue_per_tenant: 8,
            queue_total: 1,
        };
        let mut adm = Admission::default();
        assert_eq!(adm.decide(1, &cfg), AdmissionOutcome::Started);
        assert_eq!(adm.decide(1, &cfg), AdmissionOutcome::Queued);
        // Tenant 2 still gets its run slot (running jobs don't occupy the
        // shared queue), but its *second* job hits the full queue.
        assert_eq!(adm.decide(2, &cfg), AdmissionOutcome::Started);
        assert_eq!(adm.decide(2, &cfg), AdmissionOutcome::RejectedQueue);
        assert!(adm.book(1).unwrap().reconciles());
        assert!(adm.book(2).unwrap().reconciles());
    }

    #[test]
    fn promote_and_release_keep_gauges_consistent() {
        let cfg = ServeConfig {
            slots_per_tenant: 2,
            queue_per_tenant: 2,
            queue_total: 4,
        };
        let mut adm = Admission::default();
        assert_eq!(adm.decide(3, &cfg), AdmissionOutcome::Started);
        assert_eq!(adm.decide(3, &cfg), AdmissionOutcome::Started);
        assert_eq!(adm.decide(3, &cfg), AdmissionOutcome::Queued);
        assert!(!adm.slot_free(3, &cfg));
        adm.release(3, false);
        assert!(adm.slot_free(3, &cfg));
        adm.promote(3, 5);
        let book = adm.book(3).unwrap();
        assert_eq!(book.running, 2);
        assert_eq!(book.waiting, 0);
        assert_eq!(book.wait_rounds, 5);
        assert_eq!(book.finished, 1);
        assert_eq!(adm.waiting_total(), 0);
    }
}
