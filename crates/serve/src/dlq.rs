//! The poison-record dead-letter queue: CRC-guarded quarantine files.
//!
//! When a map UDF rejects a record, the engine quarantines it instead of
//! failing the job (see `opa_common::fault::FaultConfig::poisons`). The
//! server persists each finished job's quarantined records to one
//! `.opaq` file with **full provenance** — tenant, job, map task (chunk),
//! committing attempt and the record's global input offset — so an
//! operator can inspect exactly what was dropped and why, and replay the
//! job after fixing the UDF.
//!
//! The container rides on [`opa_simio::ckpt`]'s framed-section format
//! (`"OPAC"` magic, per-section kind + bounds-checked `u64` length,
//! trailing CRC-32), inheriting its hardening: corruption is detected
//! before any section is interpreted, and a forged section length fails
//! the bounds check instead of sizing an allocation.

use bytes::Bytes;
use opa_common::{Error, Result};
use opa_simio::ckpt::{decode_sections, encode_sections, Section};
use std::path::Path;

/// First-section magic distinguishing a quarantine file from the other
/// `.opac`-container users (stream checkpoints, run outputs).
const DLQ_MAGIC: &[u8] = b"OPA-DLQ v1";

/// One quarantined record with full provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineEntry {
    /// Map task (chunk) index the record belonged to.
    pub chunk: u32,
    /// Map-task attempt that committed the chunk (and the verdict).
    pub attempt: u32,
    /// The record's global input offset (arrival order).
    pub offset: u64,
    /// The rejected record, byte-exact.
    pub record: Bytes,
}

/// A job's dead-letter queue as persisted to disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineFile {
    /// Tenant that owned the job.
    pub tenant: u32,
    /// Server-assigned job id.
    pub job: u32,
    /// The job's human-readable name.
    pub job_name: String,
    /// Fault seed the poison verdicts were drawn from — replaying with
    /// the *same* seed and a fixed UDF must reproduce the verdicts, which
    /// is what makes the replay comparable to the original run.
    pub seed: u64,
    /// The quarantined records, in engine commit order.
    pub entries: Vec<QuarantineEntry>,
}

impl QuarantineFile {
    /// Serializes the quarantine to the CRC-guarded section container.
    pub fn encode(&self) -> Vec<u8> {
        let mut sections = Vec::with_capacity(3 + self.entries.len() * 2);
        sections.push(Section::Bytes(DLQ_MAGIC.to_vec()));
        sections.push(Section::Nums(vec![
            u64::from(self.tenant),
            u64::from(self.job),
            self.seed,
            self.entries.len() as u64,
        ]));
        sections.push(Section::Bytes(self.job_name.as_bytes().to_vec()));
        for e in &self.entries {
            sections.push(Section::Nums(vec![
                u64::from(e.chunk),
                u64::from(e.attempt),
                e.offset,
            ]));
            sections.push(Section::Bytes(e.record.as_slice().to_vec()));
        }
        encode_sections(&sections)
    }

    /// Parses and verifies a quarantine buffer. The container CRC has
    /// already caught bit corruption by the time section contents are
    /// interpreted; this layer additionally validates the quarantine
    /// schema (magic, counts, field widths).
    pub fn decode(buf: &[u8]) -> Result<QuarantineFile> {
        let sections = decode_sections(buf)?;
        let mut it = sections.into_iter();
        match it.next() {
            Some(Section::Bytes(m)) if m == DLQ_MAGIC => {}
            _ => return Err(Error::storage("not a quarantine file (bad magic)")),
        }
        let head = match it.next() {
            Some(Section::Nums(ns)) if ns.len() == 4 => ns,
            _ => return Err(Error::storage("quarantine header malformed")),
        };
        let tenant =
            u32::try_from(head[0]).map_err(|_| Error::storage("quarantine tenant out of range"))?;
        let job =
            u32::try_from(head[1]).map_err(|_| Error::storage("quarantine job out of range"))?;
        let seed = head[2];
        let count = head[3];
        let job_name = match it.next() {
            Some(Section::Bytes(b)) => String::from_utf8(b)
                .map_err(|_| Error::storage("quarantine job name is not UTF-8"))?,
            _ => return Err(Error::storage("quarantine job name missing")),
        };
        let mut entries = Vec::new();
        loop {
            let nums = match it.next() {
                None => break,
                Some(Section::Nums(ns)) if ns.len() == 3 => ns,
                _ => return Err(Error::storage("quarantine entry header malformed")),
            };
            let record = match it.next() {
                Some(Section::Bytes(b)) => Bytes::copy_from_slice(&b),
                _ => return Err(Error::storage("quarantine entry payload missing")),
            };
            entries.push(QuarantineEntry {
                chunk: u32::try_from(nums[0])
                    .map_err(|_| Error::storage("quarantine chunk out of range"))?,
                attempt: u32::try_from(nums[1])
                    .map_err(|_| Error::storage("quarantine attempt out of range"))?,
                offset: nums[2],
                record,
            });
        }
        if entries.len() as u64 != count {
            return Err(Error::storage(format!(
                "quarantine entry count mismatch: header says {count}, file holds {}",
                entries.len()
            )));
        }
        Ok(QuarantineFile {
            tenant,
            job,
            job_name,
            seed,
            entries,
        })
    }

    /// Writes the quarantine to `path`.
    pub fn write_to(&self, path: &Path) -> Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)
                .map_err(|e| Error::storage(format!("mkdir {}: {e}", dir.display())))?;
        }
        std::fs::write(path, self.encode())
            .map_err(|e| Error::storage(format!("write {}: {e}", path.display())))
    }

    /// Reads and verifies a quarantine from `path`.
    pub fn read_from(path: &Path) -> Result<QuarantineFile> {
        let buf = std::fs::read(path)
            .map_err(|e| Error::storage(format!("read {}: {e}", path.display())))?;
        QuarantineFile::decode(&buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> QuarantineFile {
        QuarantineFile {
            tenant: 3,
            job: 12,
            job_name: "click-count".into(),
            seed: 0xfeed,
            entries: vec![
                QuarantineEntry {
                    chunk: 0,
                    attempt: 0,
                    offset: 17,
                    record: Bytes::copy_from_slice(b"1000 42 /a 200"),
                },
                QuarantineEntry {
                    chunk: 5,
                    attempt: 2,
                    offset: 40_961,
                    record: Bytes::copy_from_slice(b"1001 43 /b 500"),
                },
            ],
        }
    }

    #[test]
    fn quarantine_roundtrips() {
        let q = sample();
        assert_eq!(QuarantineFile::decode(&q.encode()).unwrap(), q);
    }

    #[test]
    fn empty_quarantine_roundtrips() {
        let q = QuarantineFile {
            entries: Vec::new(),
            ..sample()
        };
        assert_eq!(QuarantineFile::decode(&q.encode()).unwrap(), q);
    }

    #[test]
    fn corruption_is_rejected() {
        let mut buf = sample().encode();
        let mid = buf.len() / 2;
        buf[mid] ^= 0x04;
        assert!(QuarantineFile::decode(&buf).is_err());
    }

    #[test]
    fn truncation_is_rejected() {
        let buf = sample().encode();
        for cut in [0, 4, 11, buf.len() - 1] {
            assert!(QuarantineFile::decode(&buf[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn forged_section_length_is_rejected_without_allocating() {
        // Splice a near-u64::MAX length into the first section header and
        // re-seal the CRC: the container bounds check must reject it (the
        // CRC alone would not — the attacker controls the whole file).
        let mut buf = sample().encode();
        let len = buf.len();
        buf.truncate(len - 4); // drop CRC
        buf[9..17].copy_from_slice(&(u64::MAX - 7).to_be_bytes());
        let crc = opa_simio::codec::crc32(&buf);
        buf.extend_from_slice(&crc.to_be_bytes());
        assert!(QuarantineFile::decode(&buf).is_err());
    }

    #[test]
    fn foreign_container_is_rejected_by_magic() {
        // A structurally valid section file that isn't a quarantine.
        let buf = encode_sections(&[Section::Nums(vec![1, 2, 3])]);
        let err = QuarantineFile::decode(&buf).unwrap_err().to_string();
        assert!(err.contains("magic"), "{err}");
    }

    #[test]
    fn header_count_mismatch_is_rejected() {
        // A hand-built file whose header claims 5 entries but holds 1.
        let e = &sample().entries[0];
        let inconsistent = encode_sections(&[
            Section::Bytes(DLQ_MAGIC.to_vec()),
            Section::Nums(vec![3, 12, 0xfeed, 5]),
            Section::Bytes(b"click-count".to_vec()),
            Section::Nums(vec![u64::from(e.chunk), u64::from(e.attempt), e.offset]),
            Section::Bytes(e.record.as_slice().to_vec()),
        ]);
        let err = QuarantineFile::decode(&inconsistent)
            .unwrap_err()
            .to_string();
        assert!(err.contains("count mismatch"), "{err}");
    }
}
