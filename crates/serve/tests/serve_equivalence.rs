//! The serving subsystem's core contract: interleaving jobs on the
//! server must be invisible to each job. For every admitted job, the
//! `JobOutcome` — output pairs in order, the full metrics block, the
//! structured trace (compared by CRC of its JSONL bytes) and the DLQ —
//! must be bit-identical to a solo `StreamJobBuilder` run of the same
//! spec, at every engine thread count and under fault injection.

use opa_common::{ExecConfig, FaultConfig, Key};
use opa_core::cluster::{ClusterSpec, Framework};
use opa_core::job::JobInput;
use opa_serve::{AdmissionOutcome, JobPhase, JobSpec, ServeConfig, ServeQuery, Server};
use opa_simio::codec::crc32;
use opa_stream::{StreamJobBuilder, StreamOutcome};
use opa_workloads::clickstream::ClickStreamSpec;
use opa_workloads::{ClickCountJob, FrequentUsersJob, PageFreqJob};
use std::sync::Arc;

fn input() -> Arc<JobInput> {
    Arc::new(ClickStreamSpec::counting_scaled(1 << 20).generate(42))
}

fn click_count() -> ClickCountJob {
    ClickCountJob {
        expected_users: 2_000,
    }
}

fn frequent_users() -> FrequentUsersJob {
    FrequentUsersJob {
        threshold: 5,
        expected_users: 2_000,
    }
}

fn page_freq() -> PageFreqJob {
    PageFreqJob {
        expected_pages: 4_000,
    }
}

/// The reference run: the same job driven by `StreamJobBuilder`
/// directly, with nobody else on the machine.
fn solo(
    spec: &JobSpec,
    job: impl opa_core::api::Job + Clone + 'static,
    input: &JobInput,
) -> StreamOutcome {
    StreamJobBuilder::new(job)
        .framework(spec.framework)
        .cluster(spec.cluster)
        .exec(spec.exec)
        .km_hint(spec.km_hint)
        .admission(spec.admission)
        .faults(spec.faults)
        .batches(spec.batches)
        .trace(spec.trace)
        .run_stream(input, |_| {})
        .expect("solo run")
}

fn trace_crc(o: &StreamOutcome) -> Option<u32> {
    o.job.trace.as_ref().map(|t| crc32(t.to_jsonl().as_bytes()))
}

/// Field-by-field bit-identity of the parts of a `JobOutcome` the
/// acceptance criteria name: output, metrics, trace CRC — plus the DLQ
/// and the stream bookkeeping for good measure.
fn assert_outcome_identical(served: &StreamOutcome, solo: &StreamOutcome, ctx: &str) {
    assert_eq!(served.job.output, solo.job.output, "{ctx}: output diverged");
    assert_eq!(
        served.job.metrics, solo.job.metrics,
        "{ctx}: metrics diverged"
    );
    assert_eq!(
        trace_crc(served),
        trace_crc(solo),
        "{ctx}: trace CRC diverged"
    );
    assert_eq!(served.job.dlq, solo.job.dlq, "{ctx}: DLQ diverged");
    assert_eq!(served.batches, solo.batches, "{ctx}: batch count diverged");
}

fn spec_at(threads: usize, faults: FaultConfig) -> JobSpec {
    JobSpec {
        framework: Framework::IncHash,
        cluster: ClusterSpec::tiny(),
        batches: 4,
        // `oversubscribed` lifts the engine's host-core cap so the
        // matrix runs its nominal thread count even on a 1-CPU host.
        exec: ExecConfig::oversubscribed(threads),
        km_hint: 1.0,
        admission: opa_common::AdmissionPolicy::Off,
        faults,
        trace: true,
    }
}

/// Three tenants' jobs interleaved wave-by-wave, across the engine
/// thread matrix, one of them under crash-fault injection and one under
/// UDF poison — every outcome must match its solo twin bit-for-bit.
#[test]
fn interleaved_jobs_identical_to_solo_across_thread_matrix() {
    let data = input();
    for threads in [1usize, 2, 4, 8] {
        let clean = spec_at(threads, FaultConfig::disabled());
        let crashy = JobSpec {
            framework: Framework::DincHash,
            faults: FaultConfig::uniform(3, 0.05),
            ..spec_at(threads, FaultConfig::disabled())
        };
        let poisoned = JobSpec {
            framework: Framework::MrHash,
            ..spec_at(threads, FaultConfig::poison(7, 0.002))
        };

        let mut server = Server::new(ServeConfig {
            slots_per_tenant: 1,
            queue_per_tenant: 2,
            queue_total: 8,
        });
        let a = server
            .submit(0, click_count(), Arc::clone(&data), &clean)
            .expect("submit a");
        let b = server
            .submit(1, frequent_users(), Arc::clone(&data), &crashy)
            .expect("submit b");
        let c = server
            .submit(2, page_freq(), Arc::clone(&data), &poisoned)
            .expect("submit c");
        for r in [&a, &b, &c] {
            assert_eq!(r.outcome, AdmissionOutcome::Started);
        }
        server.run_to_completion().expect("server drains");

        let ctx = |name: &str| format!("{name} @ {threads} threads");
        assert_outcome_identical(
            server.outcome(a.job).expect("a finished"),
            &solo(&clean, click_count(), &data),
            &ctx("click_count"),
        );
        assert_outcome_identical(
            server.outcome(b.job).expect("b finished"),
            &solo(&crashy, frequent_users(), &data),
            &ctx("frequent_users+crash-faults"),
        );
        assert_outcome_identical(
            server.outcome(c.job).expect("c finished"),
            &solo(&poisoned, page_freq(), &data),
            &ctx("page_freq+poison"),
        );

        // The crash-fault leg must not be vacuous.
        let faulted = server.outcome(b.job).unwrap();
        let report = faulted.job.metrics.faults.as_ref().expect("fault report");
        assert!(report.any_fired(), "no crash faults fired at rate 0.05");
    }
}

/// The serving trace (admission decisions, wave grants) is a pure
/// function of the submission sequence: two servers fed the same
/// sequence produce identical traces and identical books.
#[test]
fn serving_trace_deterministic_across_runs() {
    let data = input();
    let spec = spec_at(2, FaultConfig::disabled());
    let run = || {
        let mut server = Server::new(ServeConfig {
            slots_per_tenant: 1,
            queue_per_tenant: 2,
            queue_total: 4,
        });
        for tenant in 0..3 {
            server
                .submit(tenant, click_count(), Arc::clone(&data), &spec)
                .expect("submit");
            // Tenant slot quota of 1: a second submission queues.
            server
                .submit(tenant, click_count(), Arc::clone(&data), &spec)
                .expect("submit twin");
        }
        server.run_to_completion().expect("drain");
        (server.trace().to_vec(), server.books(), server.round())
    };
    let (t1, b1, r1) = run();
    let (t2, b2, r2) = run();
    assert_eq!(t1, t2, "serving trace is not deterministic");
    assert_eq!(b1, b2, "books are not deterministic");
    assert_eq!(r1, r2, "round count is not deterministic");
    assert!(!t1.is_empty());
}

/// A poisoned record lands in the DLQ with full provenance, the job
/// still finishes, the quarantine file round-trips, and replaying the
/// DLQ with the poison cleared reproduces the fault-free solo output.
#[test]
fn poison_quarantines_with_provenance_and_replay_restores_output() {
    let data = input();
    let dir = std::env::temp_dir().join("opa-serve-equivalence-dlq");
    std::fs::remove_dir_all(&dir).ok();
    let poisoned = spec_at(2, FaultConfig::poison(11, 0.002));

    let mut server = Server::new(ServeConfig::default()).dlq_dir(&dir);
    let receipt = server
        .submit(5, click_count(), Arc::clone(&data), &poisoned)
        .expect("submit");
    server.run_to_completion().expect("drain");

    // The job finished despite the poison, and each quarantined record
    // carries its provenance.
    let status = &server.status()[receipt.job as usize];
    assert_eq!(status.phase, JobPhase::Finished);
    let dlq = server.dlq(receipt.job).expect("dlq").to_vec();
    assert!(!dlq.is_empty(), "poison at 0.002 quarantined nothing");
    let n_records = data.len() as u64;
    for rec in &dlq {
        assert!(rec.offset < n_records, "offset outside the input");
        assert!(!rec.record.is_empty(), "quarantined record body lost");
        assert!(
            poisoned.faults.poisons(rec.offset),
            "quarantined offset is not one the fault model poisons"
        );
    }

    // The quarantine file on disk agrees with the in-memory DLQ.
    let path = server.dlq_path(receipt.job).expect("dlq file written");
    let file = opa_serve::QuarantineFile::read_from(path).expect("decodes");
    assert_eq!(file.tenant, 5);
    assert_eq!(file.job, receipt.job);
    assert_eq!(file.entries.len(), dlq.len());
    for (e, r) in file.entries.iter().zip(&dlq) {
        assert_eq!(
            (e.chunk, e.attempt, e.offset),
            (r.chunk, r.attempt, r.offset)
        );
        assert_eq!(e.record, r.record);
    }

    // Replay with the poison cleared ≡ the fault-free solo run.
    let clean = spec_at(2, FaultConfig::disabled());
    let reference = solo(&clean, click_count(), &data);
    let replayed = server.replay_dlq(receipt.job).expect("replay");
    assert!(replayed.job.dlq.is_empty(), "replay still quarantined");
    assert_eq!(
        replayed.job.output, reference.job.output,
        "replay did not restore the fault-free output"
    );
    assert_eq!(
        replayed.job.metrics.output_records,
        reference.job.metrics.output_records
    );

    // And the poisoned run really did drop records relative to clean.
    let served = server.outcome(receipt.job).unwrap();
    assert!(
        served.job.metrics.output_records <= reference.job.metrics.output_records,
        "poisoned run output more records than the clean run"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Backpressure bookkeeping: quota rejections, shared-queue rejections
/// and FIFO promotion all reconcile, and rejected jobs never execute.
#[test]
fn quota_and_queue_backpressure_books_reconcile() {
    let data = input();
    let spec = spec_at(1, FaultConfig::disabled());
    let cfg = ServeConfig {
        slots_per_tenant: 1,
        queue_per_tenant: 1,
        queue_total: 2,
    };
    let mut server = Server::new(cfg);

    // Tenant 0: one runs, one queues, the third bounces off its quota.
    let outcomes: Vec<AdmissionOutcome> = (0..3)
        .map(|_| {
            server
                .submit(0, click_count(), Arc::clone(&data), &spec)
                .expect("submit")
                .outcome
        })
        .collect();
    assert_eq!(
        outcomes,
        vec![
            AdmissionOutcome::Started,
            AdmissionOutcome::Queued,
            AdmissionOutcome::RejectedQuota
        ]
    );
    // Tenants 1 and 2 run; tenant 3's queue attempt hits the shared cap
    // (tenant 0 already holds one of the two shared waiting slots).
    for tenant in 1..=2 {
        assert_eq!(
            server
                .submit(tenant, click_count(), Arc::clone(&data), &spec)
                .expect("submit")
                .outcome,
            AdmissionOutcome::Started
        );
        assert_eq!(
            server
                .submit(tenant, click_count(), Arc::clone(&data), &spec)
                .expect("submit")
                .outcome,
            if tenant == 1 {
                AdmissionOutcome::Queued
            } else {
                AdmissionOutcome::RejectedQueue
            }
        );
    }

    server.run_to_completion().expect("drain");
    for (tenant, book) in server.books() {
        assert!(book.reconciles(), "tenant {tenant} book does not reconcile");
        assert_eq!(book.running, 0);
        assert_eq!(book.waiting, 0);
        assert_eq!(book.started, book.finished, "tenant {tenant} lost a job");
    }
    let b0 = server.book(0).expect("tenant 0 book");
    assert_eq!((b0.submitted, b0.admitted, b0.rejected_quota), (3, 2, 1));
    assert!(b0.wait_rounds > 0, "queued job waited zero rounds");
    let b2 = server.book(2).expect("tenant 2 book");
    assert_eq!((b2.submitted, b2.admitted, b2.rejected_queue), (2, 1, 1));

    // Rejected submissions never ran and finished jobs answer queries.
    let status = server.status();
    let rejected = status
        .iter()
        .filter(|s| s.phase == JobPhase::Rejected)
        .count();
    assert_eq!(rejected, 2);
    for s in status.iter().filter(|s| s.phase == JobPhase::Rejected) {
        assert_eq!(s.waves, 0, "rejected job was granted a wave");
    }
    let finished = status
        .iter()
        .find(|s| s.phase == JobPhase::Finished)
        .expect("a finished job");
    match server
        .query(finished.job, &ServeQuery::Progress)
        .expect("progress query")
    {
        opa_serve::ServeAnswer::Progress(p) => assert_eq!(p.batches_sealed, spec.batches),
        other => panic!("unexpected answer {other:?}"),
    }
}

/// `LookupBatch` must agree element-wise with per-key `Lookup`s against
/// both a *running* job (parked live state) and a *finished* one (final
/// output), and must answer the whole batch in one call.
#[test]
fn batched_lookup_matches_single_lookups_live_and_finished() {
    let spec = spec_at(1, FaultConfig::disabled());
    let mut server = Server::new(ServeConfig::default());
    let receipt = server
        .submit(0, click_count(), input(), &spec)
        .expect("submission accepted");
    assert_eq!(receipt.outcome, AdmissionOutcome::Started);
    let keys: Vec<Key> = (0..96).map(Key::from_u64).collect();

    let check = |server: &Server, ctx: &str| {
        let answer = server
            .query(0, &ServeQuery::LookupBatch(keys.clone()))
            .expect("batch lookup");
        let opa_serve::ServeAnswer::Values(vals) = answer else {
            panic!("{ctx}: LookupBatch answered a non-Values variant");
        };
        assert_eq!(vals.len(), keys.len(), "{ctx}: answer count");
        let mut hits = 0usize;
        for (key, batched) in keys.iter().zip(&vals) {
            let single = server
                .query(0, &ServeQuery::Lookup(key.clone()))
                .expect("single lookup");
            let opa_serve::ServeAnswer::Value(v) = single else {
                panic!("{ctx}: Lookup answered a non-Value variant");
            };
            assert_eq!(&v, batched, "{ctx}: key {key:?} disagrees");
            hits += usize::from(batched.is_some());
        }
        hits
    };

    // Live: step past the first wave so resident state exists.
    server.step().expect("wave step");
    server.step().expect("wave step");
    let live_hits = check(&server, "live");

    server.run_to_completion().expect("server drains");
    let finished_hits = check(&server, "finished");
    assert!(
        live_hits > 0 && finished_hits > 0,
        "vacuous: no probe key ever resolved (live {live_hits}, finished {finished_hits})"
    );
}
