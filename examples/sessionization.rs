//! Sessionization — the paper's flagship incremental workload.
//!
//! Splits a synthetic click stream into per-user sessions (5-minute
//! inactivity gap) under sort-merge and INC-hash, prints an ASCII
//! Definition-1 progress comparison, and verifies the incremental output
//! against the classic one.
//!
//! ```bash
//! cargo run --release --example sessionization
//! ```

use opa::common::units::MB;
use opa::core::prelude::*;
use opa::workloads::clickstream::ClickStreamSpec;
use opa::workloads::sessionize::decode_output;
use opa::workloads::SessionizeJob;
use std::collections::BTreeSet;

fn session_set(outcome: &JobOutcome) -> BTreeSet<(u64, u64, u64)> {
    outcome
        .output
        .iter()
        .map(|p| {
            let (start, ts, _) = decode_output(p.value.bytes());
            (p.key.as_u64().unwrap(), start, ts)
        })
        .collect()
}

fn bar(pct: f64) -> String {
    let filled = (pct / 2.5) as usize;
    format!(
        "{}{} {pct:5.1}%",
        "█".repeat(filled),
        "░".repeat(40 - filled.min(40))
    )
}

fn main() {
    let spec = ClickStreamSpec::paper_scaled(24 * MB);
    let input = spec.generate(11);
    // Exactness needs the reorder buffer to span the stream's full
    // arrival disorder (one map wave ≈ 270 s of event time here), which for
    // hot users means ~64 KB of buffered clicks — the paper's
    // "sufficiently large buffer" condition. The 0.5 KB paper states are
    // demonstrated afterwards.
    let job = SessionizeJob {
        gap_secs: 300,
        slack_secs: 600,
        state_capacity: 64 * 1024,
        // A generous cap, not a pre-allocation: charge actual state size.
        charge_fixed_footprint: false,
        expected_users: spec.users as u64,
    };
    println!(
        "sessionizing {} clicks from {} users…\n",
        input.len(),
        spec.users
    );

    let run = |fw: Framework| {
        JobBuilder::new(job.clone())
            .framework(fw)
            .cluster(ClusterSpec::paper_scaled())
            .run(&input)
            .expect("job runs")
    };
    let sm = run(Framework::SortMerge);
    let inc = run(Framework::IncHash);

    // At cluster scale a skewed reducer slows its co-located mappers
    // (shared disk), so a hot user's clicks can arrive later than the
    // reorder slack — the residual label divergence this causes is the
    // paper's own "sufficiently large buffer" caveat. Every click is
    // still accounted exactly once.
    let oracle = session_set(&sm);
    let got = session_set(&inc);
    assert_eq!(inc.output.len(), sm.output.len(), "click counts must match");
    let matching = got.intersection(&oracle).count();
    let rate = 100.0 * matching as f64 / oracle.len() as f64;
    assert!(rate > 99.0, "match rate collapsed: {rate:.2}%");
    println!(
        "INC-hash session labels match sort-merge on {rate:.2}% of clicks \
         (64 KB reorder buffers)\n"
    );

    // Progress at quartiles of the sort-merge job.
    println!("Definition-1 reduce progress while mappers run:");
    for (label, o) in [("sort-merge", &sm), ("INC-hash", &inc)] {
        println!(
            "\n  {label} (total {:.0}s):",
            o.metrics.running_time.as_secs_f64()
        );
        for frac in [0.25, 0.5, 0.75, 1.0] {
            let idx = ((o.progress.points.len() - 1) as f64 * frac) as usize;
            let p = o.progress.points[idx];
            println!(
                "    t={:>6.0}s  map {}  reduce {}",
                p.t.as_secs_f64(),
                bar(p.map_pct),
                bar(p.reduce_pct)
            );
        }
    }
    println!(
        "\nreduce spill: sort-merge {:.1} MB vs INC-hash {:.1} MB",
        sm.metrics.reduce_spill_bytes as f64 / MB as f64,
        inc.metrics.reduce_spill_bytes as f64 / MB as f64
    );

    // The paper's 0.5 KB fixed states: under-provisioned reorder buffers
    // force-drain hot users' clicks early, so a small fraction of session
    // labels fragment — every click still appears exactly once.
    let tiny = JobBuilder::new(SessionizeJob {
        state_capacity: 512,
        charge_fixed_footprint: true,
        ..job
    })
    .framework(Framework::IncHash)
    .cluster(ClusterSpec::paper_scaled())
    .run(&input)
    .expect("job runs");
    let oracle = session_set(&sm);
    let got = session_set(&tiny);
    assert_eq!(tiny.output.len(), input.len(), "clicks preserved");
    let matching = got.intersection(&oracle).count();
    println!(
        "0.5 KB states: {} / {} session labels match the oracle ({:.1}%) — the paper's \
         'sufficiently large buffer' caveat in action",
        matching,
        oracle.len(),
        100.0 * matching as f64 / oracle.len() as f64
    );
}
