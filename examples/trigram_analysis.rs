//! Trigram counting over a synthetic document corpus — the paper's
//! large-key-state-space workload (§6.2, Fig 7(f)).
//!
//! The distinct trigrams vastly outnumber what reduce memory holds, so
//! both incremental frameworks stage data; because trigram frequencies are
//! relatively flat, DINC's frequency-aware monitor barely beats INC's
//! first-come residency — exactly the paper's observation.
//!
//! ```bash
//! cargo run --release --example trigram_analysis
//! ```

use opa::common::units::MB;
use opa::core::prelude::*;
use opa::workloads::documents::DocumentSpec;
use opa::workloads::TrigramCountJob;
use std::collections::BTreeSet;

fn main() {
    let spec = DocumentSpec::paper_scaled(16 * MB);
    let input = spec.generate(3);
    println!(
        "corpus: {} documents, {:.1} MB, vocabulary {}\n",
        input.len(),
        input.total_bytes() as f64 / MB as f64,
        spec.vocabulary
    );

    let job = || TrigramCountJob {
        threshold: 200,
        expected_trigrams: 1_000_000,
    };
    let run = |fw: Framework| {
        JobBuilder::new(job())
            .framework(fw)
            .cluster(ClusterSpec::paper_scaled())
            .km_hint(5.0)
            .run(&input)
            .expect("job runs")
    };

    let inc = run(Framework::IncHash);
    let dinc = run(Framework::DincHash);
    let sm = run(Framework::SortMerge);

    // All three report the same set of frequent trigrams.
    let keys = |o: &JobOutcome| -> BTreeSet<Vec<u8>> {
        o.output.iter().map(|p| p.key.bytes().to_vec()).collect()
    };
    assert_eq!(keys(&inc), keys(&sm));
    assert_eq!(keys(&dinc), keys(&sm));
    println!(
        "{} trigrams exceed the threshold in all three frameworks ✓\n",
        keys(&sm).len()
    );

    println!(
        "{:<10} {:>10} {:>12} {:>14}",
        "framework", "time (s)", "spill (MB)", "reduce@mapfin"
    );
    for (label, o) in [("INC-hash", &inc), ("DINC-hash", &dinc), ("SM", &sm)] {
        println!(
            "{:<10} {:>10.0} {:>12.2} {:>13.0}%",
            label,
            o.metrics.running_time.as_secs_f64(),
            o.metrics.reduce_spill_bytes as f64 / MB as f64,
            o.progress.reduce_pct_at_map_finish()
        );
    }
    println!(
        "\nSM / INC time ratio: {:.2}× (paper: 9023 s vs 4100–4400 s ≈ 2.1×)",
        sm.metrics.running_time.as_secs_f64() / inc.metrics.running_time.as_secs_f64()
    );
}
