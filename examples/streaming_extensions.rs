//! The paper's future-work directions, running on the platform today:
//! windowed stream aggregation and online aggregation with early
//! approximate answers.
//!
//! ```bash
//! cargo run --release --example streaming_extensions
//! ```

use opa::common::units::MB;
use opa::core::prelude::*;
use opa::workloads::clickstream::ClickStreamSpec;
use opa::workloads::online_agg::decode_estimate;
use opa::workloads::windowed_count::decode_window_output;
use opa::workloads::{OnlineAvgJob, WindowedCountJob};
use std::collections::BTreeMap;

fn main() {
    let spec = ClickStreamSpec::paper_scaled(8 * MB);
    let (input, stats) = spec.generate_with_stats(31);
    println!(
        "stream: {} clicks, {} users, {} s of event time\n",
        input.len(),
        stats.distinct_users,
        stats.span_secs
    );

    // ------------------------------------------------ windowed counting
    let windowed = JobBuilder::new(WindowedCountJob {
        window_secs: 600,
        slack_secs: 400,
        expected_users: stats.distinct_users,
    })
    .framework(Framework::DincHash)
    .cluster(ClusterSpec::paper_scaled())
    .run(&input)
    .expect("windowed job runs");

    let mut per_window: BTreeMap<u32, u64> = BTreeMap::new();
    for p in &windowed.output {
        let (w, c) = decode_window_output(p.value.bytes());
        *per_window.entry(w).or_default() += c;
    }
    println!("clicks per 10-minute window (DINC-hash, windowed states):");
    for (w, c) in per_window.iter().take(8) {
        println!(
            "  window {:>3} [{:>5}s..{:>5}s)  {:>7} clicks  {}",
            w,
            *w as u64 * 600,
            (*w as u64 + 1) * 600,
            c,
            "▪".repeat((*c / 2000 + 1) as usize)
        );
    }
    println!(
        "  … {} windows total; reduce kept up with map at {:.0}%\n",
        per_window.len(),
        windowed.progress.reduce_pct_at_map_finish()
    );

    // ------------------------------------------------ online aggregation
    let online = JobBuilder::new(OnlineAvgJob { first_emit: 1024 })
        .framework(Framework::IncHash)
        .cluster(ClusterSpec::paper_scaled())
        .km_hint(0.2)
        .run(&input)
        .expect("online aggregation runs");

    let mut refinements: Vec<(u64, f64)> = online
        .output
        .iter()
        .map(|p| {
            let (n, sum) = decode_estimate(p.value.bytes());
            (n, sum as f64 / n as f64)
        })
        .collect();
    refinements.sort_unstable_by_key(|&(n, _)| n);
    let exact = refinements.last().expect("final answer").1;
    println!("online aggregation: mean page id, refined as data streams in:");
    for &(n, est) in &refinements {
        println!(
            "  after {:>8} records: estimate {:>8.2} (error {:>6.2}%)",
            n,
            est,
            100.0 * (est - exact).abs() / exact
        );
    }
    println!("\nfinal (exact) answer: {exact:.2} — early estimates were usable orders of magnitude sooner");
}
