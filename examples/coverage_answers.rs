//! DINC-hash approximate early answers (§4.3): terminate before reading
//! the staged buckets back and return the partial in-memory states of keys
//! whose *coverage lower bound* γ = t/(t + M/(s+1)) clears a threshold φ.
//!
//! The guarantee demonstrated here: every reported count is at least a
//! φ fraction of the key's true count, at a fraction of the exact job's
//! virtual time.
//!
//! ```bash
//! cargo run --release --example coverage_answers
//! ```

use opa::common::units::MB;
use opa::core::prelude::*;
use opa::workloads::clickstream::ClickStreamSpec;
use opa::workloads::ClickCountJob;
use std::collections::HashMap;

fn main() {
    let phi = 0.8;
    let spec = ClickStreamSpec::paper_scaled(16 * MB);
    let input = spec.generate(21);
    let job = || ClickCountJob {
        expected_users: spec.users as u64,
    };

    // Exact run: ground truth.
    let exact = JobBuilder::new(job())
        .framework(Framework::DincHash)
        .cluster(ClusterSpec::paper_scaled())
        .run(&input)
        .expect("exact run");
    let truth: HashMap<u64, u64> = exact
        .output
        .iter()
        .map(|p| (p.key.as_u64().unwrap(), p.value.as_u64().unwrap()))
        .collect();

    // Approximate run: stop at coverage φ.
    let approx = JobBuilder::new(job())
        .framework(Framework::DincHash)
        .cluster(ClusterSpec::paper_scaled())
        .early_stop_coverage(phi)
        .run(&input)
        .expect("approximate run");

    println!(
        "exact:       {:>7} users, {:>6.0} virtual s",
        truth.len(),
        exact.metrics.running_time.as_secs_f64()
    );
    println!(
        "approximate: {:>7} users, {:>6.0} virtual s (φ = {phi})",
        approx.output.len(),
        approx.metrics.running_time.as_secs_f64()
    );

    // Check the coverage guarantee on every reported key.
    let mut worst: f64 = 1.0;
    let mut violations = 0usize;
    for p in &approx.output {
        let user = p.key.as_u64().unwrap();
        let reported = p.value.as_u64().unwrap() as f64;
        let true_count = truth[&user] as f64;
        let coverage = reported / true_count;
        worst = worst.min(coverage);
        if coverage + 1e-9 < phi {
            violations += 1;
        }
    }
    println!(
        "\ncoverage of reported counts: worst {:.2} (threshold φ = {phi}); violations: {violations}",
        worst
    );
    assert_eq!(
        violations, 0,
        "the γ lower bound must guarantee coverage ≥ φ for every reported key"
    );
    println!("every reported count carries at least φ of its true mass ✓");
}
