//! Repartition join — the classic MapReduce relational pattern (cf. the
//! paper's Merge-Reduce-Merge discussion in §7), expressed on the OPA job
//! API: join a click stream against a user-profile table and count clicks
//! per country.
//!
//! The map function tags records from the two "tables" (profiles start
//! with `P=`); the reduce function pairs each user's profile with their
//! clicks. The full value list per key is required, so this runs on the
//! classic frameworks (MR-hash here — no sort needed).
//!
//! ```bash
//! cargo run --release --example repartition_join
//! ```

use opa::common::units::MB;
use opa::core::prelude::*;
use opa::workloads::clickstream::{parse_click, ClickStreamSpec};
use std::collections::BTreeMap;

const COUNTRIES: [&str; 6] = ["US", "DE", "JP", "BR", "IN", "FR"];

/// Join job: profiles ⋈ clicks on user id, aggregated to (country, clicks).
#[derive(Clone)]
struct ProfileClickJoin;

impl Job for ProfileClickJoin {
    fn name(&self) -> &str {
        "profile-click join"
    }

    fn map(&self, record: &[u8], emit: &mut dyn FnMut(&[u8], &[u8])) {
        if let Some(rest) = record.strip_prefix(b"P=".as_ref()) {
            // Profile record: "P=<user> <country>".
            let mut parts = rest.split(|&b| b == b' ');
            if let (Some(user), Some(country)) = (parts.next(), parts.next()) {
                if let Ok(user) = std::str::from_utf8(user).unwrap_or("").parse::<u64>() {
                    let mut v = vec![b'P'];
                    v.extend_from_slice(country);
                    emit(&user.to_be_bytes(), &v);
                }
            }
        } else if let Some((_, user, _)) = parse_click(record) {
            emit(&user.to_be_bytes(), b"C");
        }
    }

    fn reduce(&self, key: &Key, values: Vec<Value>, ctx: &mut ReduceCtx) {
        let mut country: Option<Vec<u8>> = None;
        let mut clicks = 0u64;
        for v in values {
            match v.bytes().first() {
                Some(b'P') => country = Some(v.bytes()[1..].to_vec()),
                Some(b'C') => clicks += 1,
                _ => {}
            }
        }
        if let Some(c) = country {
            // One joined row per user: (user, country || click count).
            let mut out = c;
            out.push(b' ');
            out.extend_from_slice(clicks.to_string().as_bytes());
            ctx.emit(key.clone(), Value::new(out));
        }
    }

    fn expected_keys(&self) -> Option<u64> {
        Some(50_000)
    }
}

fn main() {
    // Build a mixed input: the click "fact table" plus a profile row per
    // user (country assigned deterministically).
    let spec = ClickStreamSpec::counting_scaled(4 * MB);
    let (clicks, stats) = spec.generate_with_stats(13);
    let mut records: Vec<Vec<u8>> = clicks.records.iter().map(|r| r.to_vec()).collect();
    for user in 0..spec.users as u64 {
        let country = COUNTRIES[(user % COUNTRIES.len() as u64) as usize];
        records.push(format!("P={user} {country}").into_bytes());
    }
    let input = JobInput::from_records(records);
    println!(
        "joining {} clicks against {} profiles ({} users appear)\n",
        clicks.len(),
        spec.users,
        stats.distinct_users
    );

    let outcome = JobBuilder::new(ProfileClickJoin)
        .framework(Framework::MrHash)
        .cluster(ClusterSpec::paper_scaled())
        .km_hint(0.3)
        .run(&input)
        .expect("join runs");

    // Aggregate the joined rows per country and verify the join lost
    // nothing: every click of a profiled user is accounted for.
    let mut per_country: BTreeMap<String, u64> = BTreeMap::new();
    let mut joined_clicks = 0u64;
    for row in &outcome.output {
        let text = String::from_utf8_lossy(row.value.bytes()).to_string();
        let (country, count) = text.split_once(' ').expect("country count");
        let count: u64 = count.parse().expect("count");
        *per_country.entry(country.to_string()).or_default() += count;
        joined_clicks += count;
    }
    assert_eq!(
        joined_clicks,
        clicks.len() as u64,
        "join must not lose clicks"
    );

    println!(
        "clicks per country (join output, {} joined users):",
        outcome.output.len()
    );
    for (country, count) in &per_country {
        println!(
            "  {country}  {count:>8}  {}",
            "▪".repeat((count / 1500 + 1) as usize)
        );
    }
    println!(
        "\njob: {:.0} virtual s on MR-hash, shuffle {:.1} MB, all {} clicks joined ✓",
        outcome.metrics.running_time.as_secs_f64(),
        outcome.metrics.map_output_bytes as f64 / MB as f64,
        joined_clicks
    );
}
