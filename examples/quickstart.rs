//! Quickstart: one workload, all five frameworks.
//!
//! Generates a small synthetic click stream and counts the clicks each
//! user made under every reduce-side framework, verifying they all agree
//! and printing the metrics the paper's tables are made of.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use opa::common::units::MB;
use opa::core::prelude::*;
use opa::workloads::clickstream::ClickStreamSpec;
use opa::workloads::ClickCountJob;
use std::collections::BTreeMap;

fn main() {
    // ~8 MB of clicks in the counting regime (hot users, long histories).
    let spec = ClickStreamSpec::counting_scaled(8 * MB);
    let input = spec.generate(7);
    println!(
        "input: {} clicks, {:.1} MB, {} users\n",
        input.len(),
        input.total_bytes() as f64 / MB as f64,
        spec.users
    );

    let mut reference: Option<BTreeMap<u64, u64>> = None;
    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>12} {:>14}",
        "framework", "time (s)", "map cpu (s)", "shuffle", "spill", "reduce@mapfin"
    );
    for fw in Framework::ALL {
        let outcome = JobBuilder::new(ClickCountJob {
            expected_users: spec.users as u64,
        })
        .framework(fw)
        .cluster(ClusterSpec::paper_scaled())
        .km_hint(0.05)
        .run(&input)
        .expect("job runs");

        let counts: BTreeMap<u64, u64> = outcome
            .output
            .iter()
            .map(|p| (p.key.as_u64().unwrap(), p.value.as_u64().unwrap()))
            .collect();
        match &reference {
            None => reference = Some(counts),
            Some(r) => assert_eq!(&counts, r, "{fw:?} disagrees with the other frameworks"),
        }

        let m = &outcome.metrics;
        println!(
            "{:<10} {:>10.0} {:>12.0} {:>10.2}MB {:>10.2}MB {:>13.0}%",
            fw.label(),
            m.running_time.as_secs_f64(),
            m.map_cpu_per_node.as_secs_f64(),
            m.map_output_bytes as f64 / MB as f64,
            m.reduce_spill_bytes as f64 / MB as f64,
            outcome.progress.reduce_pct_at_map_finish(),
        );
    }
    println!("\nall five frameworks produced identical per-user counts ✓");
}
