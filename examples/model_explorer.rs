//! Explore the paper's §3 analytical model of Hadoop: sweep the chunk size
//! `C` and merge factor `F`, print the Eq. 4 time surface, and compare the
//! optimizer's recommendation with stock settings.
//!
//! ```bash
//! cargo run --release --example model_explorer
//! ```

use opa::common::units::{GB, MB};
use opa::common::{HardwareSpec, SystemSettings, WorkloadSpec};
use opa::model::io_model::ModelInput;
use opa::model::optimizer::{recommended_chunk, recommended_merge_factor, Optimizer};
use opa::model::time_model::CostConstants;

fn main() {
    // The paper's §3.2 validation setup: 97 GB sessionization-like
    // workload (K_m = K_r = 1) on the 10-node cluster.
    let workload = WorkloadSpec::new(97 * GB, 1.0, 1.0);
    let hardware = HardwareSpec {
        nodes: 10,
        map_buffer: 140 * MB,
        reduce_buffer: 260 * MB,
        map_slots: 4,
        reduce_slots: 4,
    };
    let constants = CostConstants::default();

    println!("Eq. 4 time measurement T(C, F) in seconds (per node):\n");
    let factors = [4usize, 16, 64];
    print!("{:>10}", "C \\ F");
    for f in factors {
        print!("{f:>10}");
    }
    println!();
    for chunk_mb in [8u64, 16, 32, 64, 96, 128, 140, 160, 256, 512] {
        print!("{:>8}MB", chunk_mb);
        for f in factors {
            let input = ModelInput::new(
                SystemSettings {
                    reducers_per_node: 4,
                    chunk_size: chunk_mb * MB,
                    merge_factor: f,
                },
                workload,
                hardware,
            )
            .expect("valid");
            print!("{:>10.0}", input.time_measurement(&constants).total());
        }
        println!();
    }

    println!("\nclosed-form recommendations (§3.2):");
    println!(
        "  chunk size: max C with C·K_m ≤ B_m → {} MB",
        recommended_chunk(workload.km, hardware.map_buffer) / MB
    );
    println!(
        "  merge factor: one-pass at F = ⌈β⌉ → {}",
        recommended_merge_factor(&workload, &hardware, 4)
    );

    let opt = Optimizer::new(workload, hardware, constants);
    let rec = opt.optimize().expect("optimization succeeds");
    let stock = opt.evaluate(64 * MB, 10, 4).expect("stock point");
    println!(
        "\ngrid-search optimum: C = {} MB, F = {}, R = {} → T = {:.0} s",
        rec.chunk_size / MB,
        rec.merge_factor,
        rec.reducers_per_node,
        rec.modeled_time
    );
    println!(
        "stock Hadoop (C = 64 MB, F = 10): T = {:.0} s → modeled improvement {:.0}%",
        stock.modeled_time,
        100.0 * (stock.modeled_time - rec.modeled_time) / stock.modeled_time
    );
    println!("(the paper measured a 14% end-to-end gain from the same tuning)");
}
