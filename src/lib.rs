//! # OPA — One-Pass Analytics
//!
//! A Rust reproduction of *"A Platform for Scalable One-Pass Analytics using
//! MapReduce"* (Li, Mazur, Diao, McGregor, Shenoy — SIGMOD 2011).
//!
//! This facade crate re-exports the whole workspace so applications can
//! depend on a single crate:
//!
//! - [`common`] — records, universal hashing, configuration, virtual time;
//! - [`simio`] — simulated storage: disks, I/O accounting, spill and bucket
//!   files, the HDFS-like block store;
//! - [`freq`] — stream-frequency substrate: Misra-Gries (FREQUENT),
//!   SpaceSaving, coverage estimation;
//! - [`model`] — the analytical model of Hadoop (§3): `λ_F`, Propositions
//!   3.1/3.2, the Eq. 4 time measurement, and the `(C, F)` optimizer;
//! - [`trace`] — structured observability: deterministic JSONL event
//!   traces, per-phase rollups, Chrome/Perfetto export, and the
//!   model-vs-measured drift checker (see `OBSERVABILITY.md`);
//! - [`core`] — the MapReduce engine with all five reduce-side frameworks:
//!   sort-merge, sort-merge + pipelining, MR-hash, INC-hash, DINC-hash;
//! - [`stream`] — the continuous-ingestion runtime: micro-batch streaming
//!   over the engine with checkpointed incremental state, crash/resume,
//!   and a live query surface (point lookup, DINC top-k, watermarks);
//! - [`workloads`] — synthetic click-stream / document generators and the
//!   paper's five evaluation workloads.
//!
//! ## Quickstart
//!
//! ```
//! use opa::core::prelude::*;
//! use opa::workloads::click_count::ClickCountJob;
//! use opa::workloads::clickstream::ClickStreamSpec;
//!
//! // Generate a small synthetic click stream and count clicks per user
//! // with the INC-hash incremental framework.
//! let data = ClickStreamSpec::small().generate(42);
//! let outcome = JobBuilder::new(ClickCountJob::default())
//!     .framework(Framework::IncHash)
//!     .cluster(ClusterSpec::tiny())
//!     .run(&data)
//!     .expect("job runs");
//! assert!(outcome.metrics.output_records > 0);
//! ```

pub use opa_common as common;
pub use opa_core as core;
pub use opa_freq as freq;
pub use opa_model as model;
pub use opa_simio as simio;
pub use opa_stream as stream;
pub use opa_trace as trace;
pub use opa_workloads as workloads;
