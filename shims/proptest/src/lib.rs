//! Minimal stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this shim reimplements
//! the slice of proptest OPA's property tests use: the [`proptest!`] macro
//! (both `pat in strategy` and `name: Type` argument forms, with an
//! optional `#![proptest_config(...)]` header), `prop_assert!` /
//! `prop_assert_eq!` / `prop_assert_ne!`, integer/float range strategies,
//! tuple strategies, `prop_map`, `Just`, `collection::vec`, and
//! `any::<T>()`.
//!
//! Differences from real proptest, by design:
//! - cases are sampled from a seed derived from the test's module path and
//!   name, so runs are fully deterministic (no `PROPTEST_` env vars);
//! - there is no shrinking — a failure reports the offending inputs
//!   directly (they tend to be small because sizes are sampled uniformly);
//! - the default case count is 64 rather than 256, keeping debug-profile
//!   suite time reasonable.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface mirrored from `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares a block of property tests.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl!{ config = ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl!{
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ( config = ($cfg:expr); ) => {};
    ( config = ($cfg:expr);
      $(#[$meta:meta])*
      fn $name:ident( $($params:tt)* ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __seed = $crate::test_runner::fnv1a(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::new(__seed, __case as u64);
                let mut __dbg = ::std::string::String::new();
                $crate::__proptest_bind!(__rng, __dbg, $($params)*);
                let __out: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(__e) = __out {
                    panic!(
                        "property test failed at case {}/{}: {}\n  inputs: {}",
                        __case + 1, __config.cases, __e, __dbg,
                    );
                }
            }
        }
        $crate::__proptest_impl!{ config = ($cfg); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_bind {
    ($rng:ident, $dbg:ident $(,)?) => {};
    ($rng:ident, $dbg:ident, $pat:pat in $strat:expr, $($rest:tt)*) => {
        let __tmp = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        {
            use ::std::fmt::Write as _;
            let _ = ::std::write!($dbg, "{} = {:?}; ", stringify!($pat), __tmp);
        }
        let $pat = __tmp;
        $crate::__proptest_bind!($rng, $dbg, $($rest)*);
    };
    ($rng:ident, $dbg:ident, $pat:pat in $strat:expr) => {
        $crate::__proptest_bind!($rng, $dbg, $pat in $strat,);
    };
    ($rng:ident, $dbg:ident, $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name: $ty = $crate::arbitrary::Arbitrary::arbitrary(&mut $rng);
        {
            use ::std::fmt::Write as _;
            let _ = ::std::write!($dbg, "{} = {:?}; ", stringify!($name), $name);
        }
        $crate::__proptest_bind!($rng, $dbg, $($rest)*);
    };
    ($rng:ident, $dbg:ident, $name:ident : $ty:ty) => {
        $crate::__proptest_bind!($rng, $dbg, $name : $ty,);
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (with
/// its inputs reported) rather than panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!("assertion failed: left == right\n  left: {:?}\n right: {:?}", __l, __r),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: left == right: {}\n  left: {:?}\n right: {:?}",
                            format!($($fmt)+), __l, __r,
                        ),
                    ));
                }
            }
        }
    };
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!("assertion failed: left != right\n  both: {:?}", __l),
                    ));
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(a in 3u64..17, b in 0usize..5, f in 1.5f64..2.5) {
            prop_assert!((3..17).contains(&a));
            prop_assert!(b < 5);
            prop_assert!((1.5..2.5).contains(&f));
        }

        #[test]
        fn typed_args_and_vecs(
            seed: u64,
            data in crate::collection::vec(any::<u8>(), 0..10),
        ) {
            let _ = seed;
            prop_assert!(data.len() < 10);
        }

        #[test]
        fn tuples_and_map((x, y) in (0u64..4, 0u64..4).prop_map(|(a, b)| (a * 10, b))) {
            prop_assert!(x % 10 == 0);
            prop_assert!(y < 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_respected(v in 0u32..1000) {
            prop_assert!(v < 1000);
        }
    }

    #[test]
    fn failures_report_inputs() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                fn always_fails(v in 10u64..11) {
                    prop_assert_eq!(v, 0, "expected failure");
                }
            }
            always_fails();
        });
        let msg = *result
            .expect_err("must fail")
            .downcast::<String>()
            .expect("string panic");
        assert!(msg.contains("v = 10"), "{msg}");
    }
}
