//! `any::<T>()` support: whole-domain sampling for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types that can be sampled across their whole domain.
pub trait Arbitrary: Sized + std::fmt::Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — a strategy over `T`'s full domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_u8_hits_full_domain_eventually() {
        let mut rng = TestRng::new(21, 0);
        let strat = any::<u8>();
        let mut seen = [false; 256];
        for _ in 0..20_000 {
            seen[strat.sample(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all byte values should appear");
    }

    #[test]
    fn any_bool_varies() {
        let mut rng = TestRng::new(22, 0);
        let strat = any::<bool>();
        let trues = (0..100).filter(|_| strat.sample(&mut rng)).count();
        assert!(trues > 20 && trues < 80);
    }
}
