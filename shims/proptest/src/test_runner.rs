//! Deterministic RNG, per-test configuration, and case failure type.

/// SplitMix64-based RNG used to sample every strategy. Seeded from the test
/// name plus the case index so each run of the suite explores the same
/// inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64, case: u64) -> Self {
        // Mix the case index in with a second round so case 0 of one test
        // doesn't mirror case 1 of a test whose name hashes one apart.
        let mut rng = TestRng {
            state: seed ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        };
        rng.next_u64();
        rng
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform sample in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is negligible for test-sized bounds (`bound` ≪ 2^64)
        // and irrelevant to correctness here.
        self.next_u64() % bound
    }

    /// Uniform sample in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Per-block configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed `prop_assert*` inside one sampled case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }

    /// Mirrors `TestCaseError::Fail(reason)` construction in real proptest.
    pub fn reject(message: impl Into<String>) -> Self {
        Self::fail(message)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// FNV-1a over the test's fully qualified name; the per-test base seed.
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_seed_and_case() {
        let a: Vec<u64> = {
            let mut r = TestRng::new(42, 3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::new(42, 3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut r = TestRng::new(42, 4);
        assert_ne!(a[0], r.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = TestRng::new(7, 0);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = TestRng::new(9, 1);
        for _ in 0..1000 {
            let f = r.unit_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
