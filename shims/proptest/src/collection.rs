//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy producing `Vec`s whose length is drawn from `size` and whose
/// elements are drawn from `elem`.
pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { elem, size }
}

pub struct VecStrategy<S> {
    elem: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.elem.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_in_range_and_elements_sampled() {
        let mut rng = TestRng::new(11, 0);
        let strat = vec(1u8..4, 2..7);
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&b| (1..4).contains(&b)));
        }
    }

    #[test]
    fn nested_vec_of_vec() {
        let mut rng = TestRng::new(12, 0);
        let strat = vec(vec(0u64..5, 1..3), 1..4);
        let v = strat.sample(&mut rng);
        assert!(!v.is_empty());
        assert!(v.iter().all(|inner| !inner.is_empty()));
    }
}
