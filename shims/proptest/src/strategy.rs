//! The [`Strategy`] trait and the combinators OPA's tests use.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type. Unlike real proptest there
/// is no value tree or shrinking: a strategy just samples.
pub trait Strategy {
    type Value: std::fmt::Debug;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: std::fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: std::fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

// `impl Strategy for Strategy` references: a &S strategy samples like S, so
// helper fns can hand out references.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start + rng.below(span) as $ty
            }
        }

        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128) - (lo as u128) + 1;
                if span > u64::MAX as u128 {
                    rng.next_u64() as $ty
                } else {
                    lo + rng.below(span as u64) as $ty
                }
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_cover_and_respect_bounds() {
        let mut rng = TestRng::new(1, 0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let v = (2u64..6).sample(&mut rng);
            assert!((2..6).contains(&v));
            seen.insert(v);
        }
        assert_eq!(seen.len(), 4, "all values of a small range should appear");
    }

    #[test]
    fn signed_and_inclusive_ranges() {
        let mut rng = TestRng::new(2, 0);
        for _ in 0..100 {
            assert!((-5i64..5).contains(&(-5i64..5).sample(&mut rng)));
            let v = (3u32..=3).sample(&mut rng);
            assert_eq!(v, 3);
        }
    }

    #[test]
    fn map_and_tuple_compose() {
        let mut rng = TestRng::new(3, 0);
        let strat = (0u64..10, 0u64..10).prop_map(|(a, b)| a + b);
        for _ in 0..50 {
            assert!(strat.sample(&mut rng) < 19);
        }
    }

    #[test]
    fn just_clones() {
        let mut rng = TestRng::new(4, 0);
        assert_eq!(Just(vec![1, 2]).sample(&mut rng), vec![1, 2]);
    }
}
