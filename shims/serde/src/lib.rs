//! Minimal stand-in for `serde`.
//!
//! Nothing in this repository serializes through serde yet (the derives
//! exist so downstream tooling *could*), and the build environment has no
//! registry access, so this shim keeps the `#[derive(Serialize,
//! Deserialize)]` annotations compiling: the traits are markers satisfied
//! by every type, and the derive macros (re-exported from the sibling
//! `serde_derive` shim) expand to nothing. Replace with the real crates
//! when a network-enabled build needs actual serialization.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; satisfied by every type.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize<'de>`; satisfied by every type.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

/// Stand-in for the `serde::ser` module path.
pub mod ser {
    pub use super::Serialize;
}

/// Stand-in for the `serde::de` module path.
pub mod de {
    pub use super::{Deserialize, DeserializeOwned};
}
