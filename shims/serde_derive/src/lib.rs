//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for the
//! local serde shim: the shim's traits have blanket impls, so the derives
//! only need to exist, not to generate code.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
