//! Minimal stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no registry access, so this shim keeps the
//! `crates/bench` targets compiling and running: it implements the API
//! surface those benches use (`criterion_group!` / `criterion_main!`,
//! `Criterion::bench_function` / `benchmark_group`, group `throughput` /
//! `sample_size` / `bench_with_input` / `bench_function` / `finish`,
//! `Bencher::iter`, `BenchmarkId`, `Throughput`, `black_box`) as a plain
//! wall-clock timing harness. There is no statistical analysis, outlier
//! rejection, or HTML report — each benchmark warms up briefly, runs for a
//! fixed time budget, and prints the mean iteration time (plus throughput
//! when configured).

pub use std::hint::black_box;

use std::time::{Duration, Instant};

const WARMUP: Duration = Duration::from_millis(100);
const MEASURE: Duration = Duration::from_millis(400);

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, None, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A named group of related benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the shim's time budget is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id.label()),
            self.throughput,
            &mut f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id.label()),
            self.throughput,
            &mut |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }

    fn label(&self) -> &str {
        &self.label
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Units the mean iteration time is normalised against.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Passed to the benchmark closure; `iter` times the supplied routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F>(label: &str, throughput: Option<Throughput>, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    // Warm up with single iterations until the warmup budget elapses, using
    // the observed per-iteration cost to size the measurement batches.
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    while warm_start.elapsed() < WARMUP {
        f(&mut b);
        warm_iters += 1;
    }
    let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
    let batch = ((0.05 / per_iter.max(1e-9)) as u64).clamp(1, 1 << 20);

    let measure_start = Instant::now();
    let mut total_iters = 0u64;
    let mut total_time = Duration::ZERO;
    while measure_start.elapsed() < MEASURE {
        let mut b = Bencher {
            iters: batch,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total_iters += batch;
        total_time += b.elapsed;
    }

    let mean = total_time.as_secs_f64() / total_iters.max(1) as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  {:>12.0} elem/s", n as f64 / mean),
        Some(Throughput::Bytes(n)) => {
            format!("  {:>9.1} MiB/s", n as f64 / mean / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    println!("{label:<48} {:>12}{rate}", format_time(mean));
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Mirrors `criterion_group!`: defines a function running each target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            let _ = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirrors `criterion_main!`: the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_iter_counts_and_times() {
        let mut b = Bencher {
            iters: 100,
            elapsed: Duration::ZERO,
        };
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert_eq!(count, 100);
    }

    #[test]
    fn benchmark_id_labels() {
        assert_eq!(BenchmarkId::new("sort", 42).label(), "sort/42");
        assert_eq!(BenchmarkId::from_parameter("1MiB").label(), "1MiB");
        assert_eq!(BenchmarkId::from("plain").label(), "plain");
    }

    #[test]
    fn format_time_units() {
        assert_eq!(format_time(2.5), "2.500 s");
        assert_eq!(format_time(0.0025), "2.500 ms");
        assert_eq!(format_time(0.0000025), "2.500 µs");
        assert_eq!(format_time(0.0000000025), "2.5 ns");
    }
}
