//! Minimal stand-in for the `bytes` crate.
//!
//! The build environment has no registry access, so this shim provides the
//! one type OPA uses — [`Bytes`] — with the same semantics the platform
//! relies on: an immutable byte buffer whose clones share a single backing
//! allocation (`Arc<[u8]>`), so shuffling and spilling never deep-copy
//! payloads. [`Bytes::slice`] is zero-copy: the sub-view keeps a reference
//! to the parent allocation and narrows its window, which is what lets the
//! data plane hand out offset/len views over one shared arena.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, shared, immutable slice of bytes.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    off: usize,
    len: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies `data` into a fresh shared allocation.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
            off: 0,
            len: data.len(),
        }
    }

    /// A view of the bytes as a plain slice.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.off..self.off + self.len]
    }

    /// Length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns a `Bytes` viewing the given subrange of this buffer.
    /// Zero-copy: the result shares the backing allocation.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Self {
        assert!(
            range.start <= range.end && range.end <= self.len,
            "slice {}..{} out of bounds of buffer of length {}",
            range.start,
            range.end,
            self.len
        );
        Bytes {
            data: Arc::clone(&self.data),
            off: self.off + range.start,
            len: range.end - range.start,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
            off: 0,
            len: 0,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    #[inline]
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            data: Arc::from(v),
            off: 0,
            len,
        }
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Self {
        let len = v.len();
        Bytes {
            data: Arc::from(v),
            off: 0,
            len,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(v: [u8; N]) -> Self {
        Bytes::copy_from_slice(&v)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_allocation() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr());
        assert_eq!(a, b);
    }

    #[test]
    fn ordering_is_lexicographic() {
        let (abc, abd, ab) = (
            Bytes::from(&b"abc"[..]),
            Bytes::from(&b"abd"[..]),
            Bytes::from(&b"ab"[..]),
        );
        assert!(abc < abd);
        assert!(ab < abc);
    }

    #[test]
    fn deref_and_indexing() {
        let b = Bytes::copy_from_slice(b"hello");
        assert_eq!(b[0], b'h');
        assert_eq!(b.len(), 5);
        assert_eq!(&b[1..3], b"el");
        assert_eq!(b.get(..2), Some(&b"he"[..]));
    }

    #[test]
    fn default_is_empty() {
        assert!(Bytes::default().is_empty());
        assert_eq!(Bytes::new().len(), 0);
    }

    #[test]
    fn slice_is_zero_copy() {
        let a = Bytes::from(&b"hello world"[..]);
        let s = a.slice(6..11);
        assert_eq!(&s[..], b"world");
        // The sub-view points into the parent allocation.
        assert_eq!(s.as_ptr(), unsafe { a.as_ptr().add(6) });
        // Slicing a slice composes offsets.
        let t = s.slice(1..3);
        assert_eq!(&t[..], b"or");
        assert_eq!(t.as_ptr(), unsafe { a.as_ptr().add(7) });
    }

    #[test]
    fn slice_bounds_and_equality() {
        let a = Bytes::from(&b"abcabc"[..]);
        assert_eq!(a.slice(0..3), a.slice(3..6));
        assert_eq!(a.slice(3..3).len(), 0);
        let h1 = {
            use std::collections::hash_map::DefaultHasher;
            let mut h = DefaultHasher::new();
            a.slice(0..3).hash(&mut h);
            h.finish()
        };
        let h2 = {
            use std::collections::hash_map::DefaultHasher;
            let mut h = DefaultHasher::new();
            Bytes::from(&b"abc"[..]).hash(&mut h);
            h.finish()
        };
        assert_eq!(h1, h2, "hash must depend on the view, not the backing");
    }
}
