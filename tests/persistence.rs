//! Output persistence: job results written through the IFile-style codec
//! round-trip through a real file, checksum included — for *any* key and
//! value bytes. The framing is length-prefixed, never delimiter-based, so
//! newlines, tabs, NULs, invalid UTF-8 and even embedded run headers must
//! all survive.

use opa::core::job::JobOutcome;
use opa::core::prelude::*;
use opa::simio::codec::{decode_run, encode_run};
use opa::workloads::clickstream::ClickStreamSpec;
use opa::workloads::ClickCountJob;
use proptest::prelude::*;

#[test]
fn job_output_roundtrips_through_disk() {
    let input = ClickStreamSpec::small().generate(55);
    let outcome = JobBuilder::new(ClickCountJob {
        expected_users: 100,
    })
    .framework(Framework::IncHash)
    .cluster(ClusterSpec::tiny())
    .run(&input)
    .expect("job runs");

    let dir = std::env::temp_dir().join("opa-persistence-test");
    let path = dir.join("click_counts.opa");
    outcome.write_output(&path).expect("write output file");

    let back = JobOutcome::read_output(&path).expect("read output file");
    assert_eq!(back.len(), outcome.output.len());
    let mut a = back;
    a.sort_by(|x, y| x.key.cmp(&y.key));
    assert_eq!(a, outcome.sorted_output());

    // Corrupting one byte must be detected by the CRC.
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&path, bytes).unwrap();
    assert!(JobOutcome::read_output(&path).is_err());

    let _ = std::fs::remove_dir_all(&dir);
}

/// End-to-end hostile-bytes round trip through the *job* persistence API:
/// an identity job whose keys and values carry newlines, tabs, NULs,
/// invalid UTF-8 and an embedded `OPA1` magic.
#[test]
fn hostile_bytes_survive_write_and_read_output() {
    #[derive(Clone)]
    struct Identity;
    impl Job for Identity {
        fn name(&self) -> &str {
            "identity"
        }
        fn map(&self, record: &[u8], emit: &mut dyn FnMut(&[u8], &[u8])) {
            // Key = record, value = record reversed: both sides hostile.
            let mut rev = record.to_vec();
            rev.reverse();
            emit(record, &rev);
        }
        fn reduce(&self, key: &Key, values: Vec<Value>, ctx: &mut ReduceCtx) {
            for v in values {
                ctx.emit(key.clone(), v);
            }
        }
    }

    let hostile: Vec<Vec<u8>> = vec![
        b"line\nwith\nnewlines".to_vec(),
        b"tab\there\tand\there".to_vec(),
        b"\r\n mixed \r terminators \n".to_vec(),
        vec![0xFF, 0xFE, 0x00, 0x80, 0xC3, 0x28], // invalid UTF-8
        vec![0x00; 5],                            // NULs
        b"OPA1 embedded magic".to_vec(),
        vec![0xF0, 0x9F, 0x92, 0xBE], // valid multi-byte UTF-8
    ];
    let outcome = JobBuilder::new(Identity)
        .framework(Framework::SortMerge)
        .cluster(ClusterSpec::tiny())
        .run(&JobInput::from_records(hostile.clone()))
        .expect("job runs");
    assert_eq!(outcome.output.len(), hostile.len());

    let dir = std::env::temp_dir().join("opa-persistence-hostile");
    let path = dir.join("hostile.opa");
    outcome.write_output(&path).expect("write output file");
    let mut back = JobOutcome::read_output(&path).expect("read output file");
    back.sort_by(|x, y| x.key.cmp(&y.key).then_with(|| x.value.cmp(&y.value)));
    assert_eq!(back, outcome.sorted_output());
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The codec itself is binary-safe for arbitrary pairs — including
    /// empty keys, empty values and empty runs — through a real file.
    #[test]
    fn arbitrary_pairs_roundtrip_through_disk(
        pairs in proptest::collection::vec(
            (
                proptest::collection::vec(any::<u8>(), 0..64),
                proptest::collection::vec(any::<u8>(), 0..64),
            ),
            0..50,
        ),
        case in 0u32..u32::MAX,
    ) {
        let pairs: Vec<Pair> = pairs
            .into_iter()
            .map(|(k, v)| Pair::new(Key::new(k), Value::new(v)))
            .collect();
        let buf = encode_run(&pairs);

        // In-memory round trip.
        let decoded = decode_run(&buf).expect("decode");
        prop_assert_eq!(&decoded, &pairs);

        // Through a real file (unique per case: proptest runs in parallel
        // across test binaries).
        let dir = std::env::temp_dir().join("opa-persistence-prop");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join(format!("run-{case}.opa"));
        std::fs::write(&path, &buf).expect("write");
        let back = std::fs::read(&path).expect("read");
        let _ = std::fs::remove_file(&path);
        prop_assert_eq!(back.as_slice(), buf.as_slice());
        prop_assert_eq!(decode_run(&back).expect("decode file"), pairs);
    }

    /// Any single-byte corruption of a non-empty run is caught: either the
    /// header/framing check or the CRC rejects it — never a silent
    /// wrong answer.
    #[test]
    fn single_byte_corruption_is_detected(
        key in proptest::collection::vec(any::<u8>(), 1..32),
        value in proptest::collection::vec(any::<u8>(), 1..32),
        flip_bit in 0u8..8,
        pos_seed in any::<u64>(),
    ) {
        let pairs = vec![Pair::new(Key::new(key), Value::new(value))];
        let mut buf = encode_run(&pairs);
        let pos = (pos_seed % buf.len() as u64) as usize;
        buf[pos] ^= 1 << flip_bit;
        match decode_run(&buf) {
            Err(_) => {}
            // A flip inside the CRC trailer *could* never collide with the
            // body checksum; a flip anywhere else must be rejected or
            // decode to something ≠ original — CRC-32 catches all 1-bit
            // errors, so decoding successfully to the same pairs is the
            // only failure mode worth rejecting.
            Ok(decoded) => prop_assert_ne!(decoded, pairs),
        }
    }
}
