//! Output persistence: job results written through the IFile-style codec
//! round-trip through a real file, checksum included.

use opa::core::job::JobOutcome;
use opa::core::prelude::*;
use opa::workloads::clickstream::ClickStreamSpec;
use opa::workloads::ClickCountJob;

#[test]
fn job_output_roundtrips_through_disk() {
    let input = ClickStreamSpec::small().generate(55);
    let outcome = JobBuilder::new(ClickCountJob {
        expected_users: 100,
    })
    .framework(Framework::IncHash)
    .cluster(ClusterSpec::tiny())
    .run(&input)
    .expect("job runs");

    let dir = std::env::temp_dir().join("opa-persistence-test");
    let path = dir.join("click_counts.opa");
    outcome.write_output(&path).expect("write output file");

    let back = JobOutcome::read_output(&path).expect("read output file");
    assert_eq!(back.len(), outcome.output.len());
    let mut a = back;
    a.sort_by(|x, y| x.key.cmp(&y.key));
    assert_eq!(a, outcome.sorted_output());

    // Corrupting one byte must be detected by the CRC.
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&path, bytes).unwrap();
    assert!(JobOutcome::read_output(&path).is_err());

    let _ = std::fs::remove_dir_all(&dir);
}
