//! The precise output contract of fault recovery, pinned per fault class
//! on the paper's own workloads:
//!
//! - **Reduce-crash recovery is output-transparent.** Re-replaying a
//!   reducer's `Effect` mailbox only re-charges time and I/O on that
//!   reducer's own timeline; the output is bit-identical to the
//!   fault-free run for *every* job, including order-sensitive ones.
//! - **Map retries, stragglers and spill-disk retries shift delivery
//!   order** (all three delay a map task's completion, spill errors via
//!   its spill ops). For order-independent reductions (all the
//!   count-style workloads) the output is still bit-identical.
//!   Sessionization emits early output from a slack-bounded reorder
//!   buffer, so a delivery delayed past the slack may re-anchor a
//!   session label — exactly like a re-executed map task in real Hadoop.
//!   The click multiset must survive unchanged, and the blocking
//!   sort-merge baseline stays bit-identical regardless.

use opa::common::fault::FaultConfig;
use opa::core::prelude::*;
use opa::workloads::clickstream::{parse_click, ClickStreamSpec};
use opa::workloads::sessionize::decode_output;
use opa::workloads::{ClickCountJob, SessionizeJob};

const SEED: u64 = 9;
const RATE: f64 = 0.15;

fn time_only_faults() -> [FaultConfig; 1] {
    [FaultConfig {
        seed: SEED,
        reduce_failure_rate: RATE,
        ..FaultConfig::disabled()
    }]
}

fn reordering_faults() -> [FaultConfig; 3] {
    [
        FaultConfig {
            seed: SEED,
            map_failure_rate: RATE,
            ..FaultConfig::disabled()
        },
        FaultConfig {
            seed: SEED,
            straggler_rate: RATE,
            ..FaultConfig::disabled()
        },
        FaultConfig {
            seed: SEED,
            spill_error_rate: RATE,
            ..FaultConfig::disabled()
        },
    ]
}

fn sessionize_job() -> SessionizeJob {
    SessionizeJob {
        gap_secs: 300,
        slack_secs: 400,
        state_capacity: 16384,
        charge_fixed_footprint: false,
        expected_users: 1000,
    }
}

fn run(
    job: impl Job + Clone + 'static,
    fw: Framework,
    cfg: Option<FaultConfig>,
    input: &JobInput,
) -> JobOutcome {
    let mut b = JobBuilder::new(job)
        .framework(fw)
        .cluster(ClusterSpec::paper_scaled());
    if let Some(c) = cfg {
        b = b.faults(c);
    }
    b.run(input).expect("job runs")
}

#[test]
fn time_only_recovery_is_output_transparent_even_for_order_sensitive_jobs() {
    let input = ClickStreamSpec::paper_scaled(1_500_000).generate(7);
    for fw in [Framework::IncHash, Framework::DincHash] {
        let clean = run(sessionize_job(), fw, None, &input).sorted_output();
        for cfg in time_only_faults() {
            let faulted = run(sessionize_job(), fw, Some(cfg), &input);
            let rep = faulted.metrics.faults.as_ref().expect("report");
            assert!(rep.any_fired(), "{fw:?}: no fault fired at rate {RATE}");
            assert_eq!(
                faulted.sorted_output(),
                clean,
                "{fw:?}: time-only recovery must never change output"
            );
        }
    }
}

#[test]
fn recovered_reduce_replays_do_not_double_count_first_pass_io() {
    // Reduce-crash recovery re-replays the crashed reducer's effect
    // mailbox, re-charging its I/O into `JobMetrics::io` (the devices
    // really served it twice). That re-done share must land in
    // `io_recovery` so `io_first_pass()` — the quantity the §3 model
    // predicts and the drift checker treats as authoritative — matches
    // the fault-free run exactly, per category, byte for byte.
    let input = ClickStreamSpec::counting_scaled(1_500_000).generate(8);
    let job = ClickCountJob {
        expected_users: 1000,
    };
    for fw in [Framework::SortMerge, Framework::IncHash] {
        let clean = run(job.clone(), fw, None, &input);
        assert_eq!(
            clean.metrics.io_recovery.total_bytes() + clean.metrics.io_recovery.total_seeks(),
            0,
            "{fw:?}: a fault-free run must charge no recovery I/O"
        );
        for cfg in time_only_faults() {
            let faulted = run(job.clone(), fw, Some(cfg), &input);
            let rep = faulted.metrics.faults.as_ref().expect("report");
            assert!(rep.reduce_failures > 0, "{fw:?}: no crash fired at {RATE}");
            assert_eq!(
                faulted.metrics.io_first_pass(),
                clean.metrics.io,
                "{fw:?}: first-pass I/O must equal the fault-free run's"
            );
            assert_eq!(
                faulted.metrics.io.total_bytes(),
                clean.metrics.io.total_bytes() + faulted.metrics.io_recovery.total_bytes(),
                "{fw:?}: io must decompose as first-pass + recovery"
            );
        }
    }
}

#[test]
fn delivery_reordering_preserves_count_outputs_exactly() {
    let input = ClickStreamSpec::counting_scaled(1_500_000).generate(8);
    let job = ClickCountJob {
        expected_users: 1000,
    };
    for fw in [
        Framework::SortMerge,
        Framework::IncHash,
        Framework::DincHash,
    ] {
        let clean = run(job.clone(), fw, None, &input).sorted_output();
        for cfg in reordering_faults() {
            let faulted = run(job.clone(), fw, Some(cfg), &input);
            assert!(faulted.metrics.faults.as_ref().expect("report").any_fired());
            assert_eq!(
                faulted.sorted_output(),
                clean,
                "{fw:?}: order-independent reduction must be fault-transparent"
            );
        }
    }
}

#[test]
fn stream_checkpoint_resume_is_output_equivalent_under_reduce_crashes() {
    // The streaming kill/resume contract: checkpoint mid-stream while
    // reduce crashes are firing, restore into fresh reducers, and the
    // resumed run must produce the same output multiset as the
    // uninterrupted faulted run — every pair exactly once, nothing
    // double-emitted from the restored pending buffers. (Raw emission
    // *order* may differ: post-resume crash recovery re-replays an empty
    // history, which re-times — never re-writes — subsequent work.)
    use opa::stream::StreamJobBuilder;
    let input = ClickStreamSpec::counting_scaled(1_500_000).generate(8);
    let job = ClickCountJob {
        expected_users: 1000,
    };
    // A high retry budget keeps crashes firing across the whole run, so
    // the resumed half genuinely exercises post-restore crash recovery.
    let cfg = FaultConfig {
        seed: SEED,
        reduce_failure_rate: RATE,
        max_retries: 50,
        ..FaultConfig::disabled()
    };
    let dir = std::env::temp_dir().join("opa-stream-crash-resume");
    std::fs::create_dir_all(&dir).expect("mkdir");
    for fw in [Framework::IncHash, Framework::DincHash] {
        let build = || {
            StreamJobBuilder::new(job.clone())
                .framework(fw)
                .cluster(ClusterSpec::paper_scaled())
                .faults(cfg)
                .batches(5)
        };
        let full = build().run_stream(&input, |_| {}).expect("full stream");
        let frep = full.job.metrics.faults.as_ref().expect("report");
        assert!(frep.reduce_failures > 0, "{fw:?}: no crash fired at {RATE}");

        let ck = dir.join(format!("{fw:?}.opac"));
        let ckp = ck.clone();
        build()
            .run_stream(&input, |ctl| {
                if ctl.batch() == 2 {
                    ctl.checkpoint(ckp.clone());
                }
            })
            .expect("checkpointing stream");
        let resumed = build()
            .resume_stream(&input, &ck, |_| {})
            .expect("resumed stream");
        let rrep = resumed.job.metrics.faults.as_ref().expect("report");
        assert!(
            rrep.reduce_failures > 0,
            "{fw:?}: resume must still face post-restore crashes"
        );
        assert_eq!(
            resumed.job.output.len(),
            full.job.output.len(),
            "{fw:?}: resume lost or double-emitted output"
        );
        assert_eq!(
            resumed.job.sorted_output(),
            full.job.sorted_output(),
            "{fw:?}: resumed output differs from the uninterrupted run"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stream_checkpoint_resume_round_trips_admission_sketch_and_counters_exactly() {
    // The admission round-trip contract: a stream checkpointed mid-run
    // with the LFU gate on and restored into fresh reducers must reach
    // the *same end state* as the uninterrupted run — identical output
    // multiset and identical admission counters. Post-checkpoint
    // decisions depend on the frequency sketch and the spilled-key
    // filter, so the counters agree only if `export_state`/`import_state`
    // carried both bit-exactly; any drift in the restored sketch shows up
    // as a diverged absorbed/rejected split. A 4 KB reduce buffer (vs the
    // stream's ~450 distinct users) guarantees the gate actually fires.
    use opa::common::units::KB;
    use opa::common::AdmissionPolicy;
    use opa::stream::StreamJobBuilder;
    let input = ClickStreamSpec::counting_scaled(6_000_000).generate(8);
    let job = ClickCountJob {
        expected_users: 1000,
    };
    let mut cluster = ClusterSpec::tiny();
    cluster.hardware.reduce_buffer = 4 * KB;
    let dir = std::env::temp_dir().join("opa-stream-admission-resume");
    std::fs::create_dir_all(&dir).expect("mkdir");
    for fw in [Framework::IncHash, Framework::DincHash] {
        let build = |policy: AdmissionPolicy| {
            StreamJobBuilder::new(job.clone())
                .framework(fw)
                .cluster(cluster)
                .admission(policy)
                .batches(5)
        };
        let full = build(AdmissionPolicy::Lfu)
            .run_stream(&input, |_| {})
            .expect("full stream");
        let full_adm = full
            .job
            .metrics
            .admission
            .expect("admission stats present with the gate on");
        assert!(
            full_adm.rejected > 0,
            "{fw:?}: the gate never fired — the round-trip is vacuous"
        );

        let ck = dir.join(format!("{fw:?}.opac"));
        let ckp = ck.clone();
        build(AdmissionPolicy::Lfu)
            .run_stream(&input, |ctl| {
                if ctl.batch() == 2 {
                    ctl.checkpoint(ckp.clone());
                }
            })
            .expect("checkpointing stream");
        let resumed = build(AdmissionPolicy::Lfu)
            .resume_stream(&input, &ck, |_| {})
            .expect("resumed stream");
        assert_eq!(
            resumed.job.sorted_output(),
            full.job.sorted_output(),
            "{fw:?}: resumed output differs from the uninterrupted run"
        );
        assert_eq!(
            resumed.job.metrics.admission.expect("admission stats"),
            full_adm,
            "{fw:?}: admission counters did not survive checkpoint/restore"
        );

        // A checkpoint written without the sketch cannot be restored into
        // a gated run: the mismatch must be a hard error, not a silently
        // empty sketch.
        let off_ck = dir.join(format!("{fw:?}-off.opac"));
        let off_ckp = off_ck.clone();
        build(AdmissionPolicy::Off)
            .run_stream(&input, |ctl| {
                if ctl.batch() == 2 {
                    ctl.checkpoint(off_ckp.clone());
                }
            })
            .expect("admission-off checkpointing stream");
        let err = build(AdmissionPolicy::Lfu).resume_stream(&input, &off_ck, |_| {});
        assert!(
            err.is_err(),
            "{fw:?}: resuming an admission-off checkpoint with the gate on must fail"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn delivery_reordering_preserves_the_click_multiset_under_sessionization() {
    // Map retries delay deliveries past the reorder slack, so session
    // labels may re-anchor — but every click must appear exactly once,
    // and the blocking sort-merge baseline (which reduces only after the
    // full group-by) must stay bit-identical.
    let input = ClickStreamSpec::paper_scaled(1_500_000).generate(7);
    let in_clicks = {
        let mut v: Vec<(u64, u64)> = input
            .records
            .iter()
            .map(|r| {
                let (ts, user, _) = parse_click(r).unwrap();
                (user, ts)
            })
            .collect();
        v.sort_unstable();
        v
    };
    let sm_clean = run(sessionize_job(), Framework::SortMerge, None, &input).sorted_output();
    for cfg in reordering_faults() {
        for fw in [
            Framework::SortMerge,
            Framework::IncHash,
            Framework::DincHash,
        ] {
            let faulted = run(sessionize_job(), fw, Some(cfg), &input);
            let mut out_clicks: Vec<(u64, u64)> = faulted
                .output
                .iter()
                .map(|p| {
                    let (_, ts, _) = decode_output(p.value.bytes());
                    (p.key.as_u64().unwrap(), ts)
                })
                .collect();
            out_clicks.sort_unstable();
            assert_eq!(
                out_clicks, in_clicks,
                "{fw:?}: a click was lost or duplicated during recovery"
            );
        }
        let sm_faulted = run(sessionize_job(), Framework::SortMerge, Some(cfg), &input);
        assert_eq!(
            sm_faulted.sorted_output(),
            sm_clean,
            "sort-merge reduces after the full group-by; reordering must not matter"
        );
    }
}
