//! End-to-end correctness: every reduce-side framework must produce the
//! same answers as a straight single-threaded oracle, across all five
//! workloads, on a spill-happy tiny cluster.

use opa::core::prelude::*;
use opa::workloads::clickstream::{parse_click, ClickStreamSpec};
use opa::workloads::documents::DocumentSpec;
use opa::workloads::sessionize::decode_output;
use opa::workloads::{
    ClickCountJob, FrequentUsersJob, PageFreqJob, SessionizeJob, TrigramCountJob,
};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Frameworks applicable to every job (incremental ones need init/cb/fn,
/// which all our workloads implement).
const ALL: [Framework; 5] = [
    Framework::SortMerge,
    Framework::SortMergePipelined,
    Framework::MrHash,
    Framework::IncHash,
    Framework::DincHash,
];

fn run(job: impl Job + Clone + 'static, framework: Framework, input: &JobInput) -> JobOutcome {
    JobBuilder::new(job)
        .framework(framework)
        .cluster(ClusterSpec::tiny())
        .run(input)
        .expect("job runs")
}

// ---------------------------------------------------------------- counts

fn oracle_user_counts(input: &JobInput) -> BTreeMap<u64, u64> {
    let mut m = BTreeMap::new();
    for rec in &input.records {
        let (_, user, _) = parse_click(rec).unwrap();
        *m.entry(user).or_default() += 1;
    }
    m
}

fn outcome_counts(outcome: &JobOutcome) -> BTreeMap<u64, u64> {
    outcome
        .output
        .iter()
        .map(|p| (p.key.as_u64().unwrap(), p.value.as_u64().unwrap()))
        .collect()
}

#[test]
fn click_count_exact_across_all_frameworks() {
    let input = ClickStreamSpec::small().generate(11);
    let oracle = oracle_user_counts(&input);
    for fw in ALL {
        let outcome = run(
            ClickCountJob {
                expected_users: 100,
            },
            fw,
            &input,
        );
        assert_eq!(
            outcome_counts(&outcome),
            oracle,
            "framework {fw:?} diverged from oracle"
        );
    }
}

#[test]
fn frequent_users_membership_exact() {
    let input = ClickStreamSpec::small().generate(12);
    let threshold = 20;
    let oracle: BTreeSet<u64> = oracle_user_counts(&input)
        .into_iter()
        .filter(|&(_, c)| c >= threshold)
        .map(|(u, _)| u)
        .collect();
    assert!(!oracle.is_empty(), "test needs some frequent users");
    for fw in ALL {
        let outcome = run(
            FrequentUsersJob {
                threshold,
                expected_users: 100,
            },
            fw,
            &input,
        );
        let got: BTreeSet<u64> = outcome
            .output
            .iter()
            .map(|p| p.key.as_u64().unwrap())
            .collect();
        assert_eq!(got, oracle, "framework {fw:?} membership diverged");
    }
}

#[test]
fn page_freq_exact_across_all_frameworks() {
    let input = ClickStreamSpec::small().generate(13);
    let mut oracle: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
    for rec in &input.records {
        let (_, _, tail) = parse_click(rec).unwrap();
        let url = tail.split(|&b| b == b' ').next().unwrap();
        *oracle.entry(url.to_vec()).or_default() += 1;
    }
    for fw in ALL {
        let outcome = run(
            PageFreqJob {
                expected_pages: 1000,
            },
            fw,
            &input,
        );
        let got: BTreeMap<Vec<u8>, u64> = outcome
            .output
            .iter()
            .map(|p| (p.key.bytes().to_vec(), p.value.as_u64().unwrap()))
            .collect();
        assert_eq!(got, oracle, "framework {fw:?} diverged");
    }
}

#[test]
fn trigram_count_exact_across_all_frameworks() {
    let input = DocumentSpec::small().generate(14);
    let threshold = 10;
    let mut counts: HashMap<Vec<u8>, u64> = HashMap::new();
    for rec in &input.records {
        let words: Vec<&[u8]> = rec.split(|&b| b == b' ').collect();
        for w in words.windows(3) {
            let mut key = w[0].to_vec();
            key.push(b' ');
            key.extend_from_slice(w[1]);
            key.push(b' ');
            key.extend_from_slice(w[2]);
            *counts.entry(key).or_default() += 1;
        }
    }
    let oracle: BTreeSet<Vec<u8>> = counts
        .iter()
        .filter(|&(_, &c)| c >= threshold)
        .map(|(k, _)| k.clone())
        .collect();
    assert!(!oracle.is_empty(), "test needs frequent trigrams");
    for fw in ALL {
        let outcome = run(
            TrigramCountJob {
                threshold,
                expected_trigrams: 10_000,
            },
            fw,
            &input,
        );
        let got: BTreeSet<Vec<u8>> = outcome
            .output
            .iter()
            .map(|p| p.key.bytes().to_vec())
            .collect();
        assert_eq!(got, oracle, "framework {fw:?} membership diverged");
    }
}

// ---------------------------------------------------------- sessionization

/// Oracle: (user, session_start, ts) triples from a full in-order pass.
fn oracle_sessions(input: &JobInput, gap: u64) -> BTreeSet<(u64, u64, u64)> {
    let mut per_user: HashMap<u64, Vec<u64>> = HashMap::new();
    for rec in &input.records {
        let (ts, user, _) = parse_click(rec).unwrap();
        per_user.entry(user).or_default().push(ts);
    }
    let mut out = BTreeSet::new();
    for (user, mut ts) in per_user {
        ts.sort_unstable();
        let mut start = 0;
        let mut last = None::<u64>;
        for t in ts {
            match last {
                Some(l) if t <= l + gap => {}
                _ => start = t,
            }
            out.insert((user, start, t));
            last = Some(t);
        }
    }
    out
}

fn outcome_sessions(outcome: &JobOutcome) -> Vec<(u64, u64, u64)> {
    outcome
        .output
        .iter()
        .map(|p| {
            let (s, t, _) = decode_output(p.value.bytes());
            (p.key.as_u64().unwrap(), s, t)
        })
        .collect()
}

fn sessionize_job() -> SessionizeJob {
    SessionizeJob {
        gap_secs: 300,
        slack_secs: 400,
        state_capacity: 16384,
        charge_fixed_footprint: false,
        expected_users: 100,
    }
}

#[test]
fn sessionization_exact_for_exact_frameworks() {
    let input = ClickStreamSpec::small().generate(15);
    let oracle = oracle_sessions(&input, 300);
    for fw in [
        Framework::SortMerge,
        Framework::SortMergePipelined,
        Framework::MrHash,
        Framework::IncHash,
    ] {
        let outcome = run(sessionize_job(), fw, &input);
        let got = outcome_sessions(&outcome);
        assert_eq!(got.len(), input.len(), "{fw:?}: click count mismatch");
        let got_set: BTreeSet<_> = got.into_iter().collect();
        assert_eq!(got_set, oracle, "{fw:?}: session labels diverged");
    }
}

#[test]
fn sessionization_dinc_preserves_clicks_and_session_shape() {
    let input = ClickStreamSpec::small().generate(16);
    let outcome = run(sessionize_job(), Framework::DincHash, &input);
    let got = outcome_sessions(&outcome);
    // Invariant 1: every click appears exactly once.
    assert_eq!(got.len(), input.len());
    let mut in_clicks: Vec<(u64, u64)> = input
        .records
        .iter()
        .map(|r| {
            let (ts, user, _) = parse_click(r).unwrap();
            (user, ts)
        })
        .collect();
    let mut out_clicks: Vec<(u64, u64)> = got.iter().map(|&(u, _, t)| (u, t)).collect();
    in_clicks.sort_unstable();
    out_clicks.sort_unstable();
    assert_eq!(in_clicks, out_clicks, "click multiset must be preserved");
    // Invariant 2: session labels are internally consistent — a session's
    // start equals its earliest click and no intra-session gap exceeds
    // 300 s.
    let mut sessions: HashMap<(u64, u64), Vec<u64>> = HashMap::new();
    for (u, s, t) in got {
        sessions.entry((u, s)).or_default().push(t);
    }
    for ((_, start), mut ts) in sessions {
        ts.sort_unstable();
        // A DINC session label is one of the session's click timestamps
        // (exact runs pin it to the earliest; respill paths may anchor on
        // a later click).
        assert!(
            ts[0] <= start && start <= *ts.last().unwrap(),
            "session label {start} outside click range {:?}",
            (ts[0], ts.last())
        );
        for w in ts.windows(2) {
            assert!(w[1] - w[0] <= 300, "intra-session gap exceeds 300");
        }
    }
    // Invariant 3: DINC is near-exact — ≥ 95% of clicks carry the oracle
    // session label on this workload.
    let oracle = oracle_sessions(&input, 300);
    let outcome2 = run(sessionize_job(), Framework::DincHash, &input);
    let matching = outcome_sessions(&outcome2)
        .into_iter()
        .filter(|x| oracle.contains(x))
        .count();
    let frac = matching as f64 / input.len() as f64;
    assert!(
        frac >= 0.95,
        "only {frac:.3} of session labels match oracle"
    );
}

// -------------------------------------------------------------- plumbing

#[test]
fn metrics_account_io_conservation() {
    let input = ClickStreamSpec::small().generate(17);
    for fw in ALL {
        let outcome = run(
            ClickCountJob {
                expected_users: 100,
            },
            fw,
            &input,
        );
        let m = &outcome.metrics;
        assert_eq!(m.input_bytes, input.total_bytes());
        assert!(m.map_output_bytes > 0);
        assert!(m.running_time >= m.map_finish);
        assert_eq!(
            m.output_records as usize,
            outcome.output.len(),
            "{fw:?}: output record accounting"
        );
    }
}

#[test]
fn incremental_framework_requires_incremental_job() {
    // A job with no IncrementalReducer must be rejected by INC/DINC.
    #[derive(Clone)]
    struct Plain;
    impl Job for Plain {
        fn name(&self) -> &str {
            "plain"
        }
        fn map(&self, record: &[u8], emit: &mut dyn FnMut(&[u8], &[u8])) {
            emit(record, &1u64.to_be_bytes());
        }
        fn reduce(&self, key: &Key, values: Vec<Value>, ctx: &mut ReduceCtx) {
            ctx.emit(key.clone(), Value::from_u64(values.len() as u64));
        }
    }
    let input = JobInput::from_records(vec![b"a".to_vec(), b"b".to_vec()]);
    for fw in [Framework::IncHash, Framework::DincHash] {
        let res = JobBuilder::new(Plain)
            .framework(fw)
            .cluster(ClusterSpec::tiny())
            .run(&input);
        assert!(res.is_err(), "{fw:?} must reject non-incremental jobs");
    }
    // But the classic frameworks accept it.
    assert!(JobBuilder::new(Plain)
        .framework(Framework::SortMerge)
        .cluster(ClusterSpec::tiny())
        .run(&input)
        .is_ok());
}

#[test]
fn empty_input_rejected() {
    let res = JobBuilder::new(ClickCountJob::default())
        .cluster(ClusterSpec::tiny())
        .run(&JobInput::default());
    assert!(res.is_err());
}

#[test]
fn runs_are_deterministic() {
    let input = ClickStreamSpec::small().generate(18);
    for fw in ALL {
        let a = run(sessionize_job(), fw, &input);
        let b = run(sessionize_job(), fw, &input);
        assert_eq!(
            a.metrics.running_time, b.metrics.running_time,
            "{fw:?}: nondeterministic running time"
        );
        assert_eq!(
            a.sorted_output(),
            b.sorted_output(),
            "{fw:?}: nondeterministic output"
        );
        assert_eq!(
            a.metrics.reduce_spill_bytes, b.metrics.reduce_spill_bytes,
            "{fw:?}: nondeterministic spill accounting"
        );
    }
}

#[test]
fn windowed_count_sums_exact_across_all_frameworks() {
    use opa::workloads::windowed_count::decode_window_output;
    use opa::workloads::WindowedCountJob;
    let input = ClickStreamSpec::small().generate(19);
    // Oracle: clicks per (user, 100 s window).
    let mut oracle: BTreeMap<(u64, u32), u64> = BTreeMap::new();
    for rec in &input.records {
        let (ts, user, _) = parse_click(rec).unwrap();
        *oracle.entry((user, (ts / 100) as u32)).or_default() += 1;
    }
    for fw in ALL {
        let outcome = run(
            WindowedCountJob {
                window_secs: 100,
                slack_secs: 400,
                expected_users: 100,
            },
            fw,
            &input,
        );
        // Counts are additive, so summing emissions per (user, window)
        // must reproduce the oracle exactly — even under DINC's
        // eviction-driven emission splits.
        let mut got: BTreeMap<(u64, u32), u64> = BTreeMap::new();
        for p in &outcome.output {
            let (w, c) = decode_window_output(p.value.bytes());
            *got.entry((p.key.as_u64().unwrap(), w)).or_default() += c;
        }
        assert_eq!(got, oracle, "framework {fw:?} diverged");
    }
}
