//! End-to-end drift checking: run a job with tracing on, fold the trace
//! into a rollup, and let `opa_trace::drift::check` evaluate the §3 model
//! (Props. 3.1/3.2) for the *same* `(C, F, R)` against the measured
//! first-pass I/O — the automated version of the paper's "within 10%"
//! model-validation claim, plus Perfetto-export validity for every
//! workload × framework cell of the evaluation matrix.

use opa::common::units::{KB, MB};
use opa::core::prelude::*;
use opa::trace::drift;
use opa::trace::json::JsonValue;
use opa::workloads::clickstream::ClickStreamSpec;
use opa::workloads::documents::DocumentSpec;
use opa::workloads::{
    ClickCountJob, FrequentUsersJob, PageFreqJob, SessionizeJob, TrigramCountJob,
};

fn multi_pass_cluster(chunk_kb: u64, f: usize) -> ClusterSpec {
    let mut spec = ClusterSpec::paper_scaled();
    spec.system.chunk_size = chunk_kb * KB;
    spec.system.merge_factor = f;
    // Small shuffle buffers put the reducers firmly in the multi-pass
    // regime (β ≈ 9) even at test-sized inputs (as in model_vs_engine).
    spec.hardware.reduce_buffer = 128 * KB;
    spec
}

#[test]
fn drift_report_stays_within_ten_percent_for_sort_merge_sessionization() {
    let spec = ClickStreamSpec::paper_scaled(24 * MB);
    let (input, stats) = spec.generate_with_stats(33);
    for (ckb, f) in [(64u64, 10usize), (32, 16)] {
        let c = multi_pass_cluster(ckb, f);
        let outcome = JobBuilder::new(SessionizeJob {
            gap_secs: 300,
            slack_secs: 400,
            state_capacity: 512,
            charge_fixed_footprint: true,
            expected_users: stats.distinct_users,
        })
        .framework(Framework::SortMerge)
        .cluster(c)
        .trace(true)
        .run(&input)
        .expect("job runs");

        let rollup = outcome.trace.as_ref().expect("trace enabled").rollup();
        let report = drift::check(c.system, c.hardware, &rollup).expect("drift check");

        // The workload the checker derives from the trace must match the
        // ground truth the engine saw.
        assert_eq!(report.workload.input_bytes, input.total_bytes());

        let total = &report.bytes_total;
        assert!(
            total.rel_err() < 0.10,
            "Prop 3.1 total off by {:.1}% at C={ckb}KB F={f} (paper promises <10%)\n{}",
            total.rel_err() * 100.0,
            report.render()
        );
        // The exact terms: map input, map output and job output have no
        // modeling slack at all — they are data sizes, not λ_F estimates.
        for t in &report.bytes {
            if matches!(t.name, "u1" | "u3" | "u5") {
                assert!(
                    t.rel_err() < 0.01,
                    "{}: exact term off by {:.2}%\n{}",
                    t.name,
                    t.rel_err() * 100.0,
                    report.render()
                );
            }
        }
        // Dominant terms (≥5% of measured bytes) individually stay near
        // tolerance too — the total must not hide a cancellation. The
        // spill terms (u2/u4) ride the λ_F pass-count estimate, which
        // carries ~10% slack of its own at test scale, so their bound is
        // looser than the 10% the total gets.
        assert!(
            report.max_bytes_rel_err(0.05) < 0.15,
            "a dominant Prop 3.1 term drifted ≥15% at C={ckb}KB F={f}\n{}",
            report.render()
        );
    }
}

#[test]
fn chrome_export_is_valid_for_every_workload_framework_cell() {
    // All 5 paper workloads × 4 frameworks: the exported Chrome trace
    // must be well-formed JSON of the Trace Event Format shape Perfetto
    // loads — a `traceEvents` array whose entries all carry `ph` and
    // `pid`, with at least one complete ("X") span per run.
    let clicks = ClickStreamSpec::small().generate(101);
    let docs = DocumentSpec::paper_scaled(512 * KB).generate(7);
    let frameworks = [
        Framework::SortMerge,
        Framework::MrHash,
        Framework::IncHash,
        Framework::DincHash,
    ];
    let mut cells = 0usize;
    for fw in frameworks {
        let outcomes = [
            JobBuilder::new(SessionizeJob {
                gap_secs: 300,
                slack_secs: 400,
                state_capacity: 512,
                charge_fixed_footprint: false,
                expected_users: 100,
            })
            .framework(fw)
            .cluster(ClusterSpec::tiny())
            .trace(true)
            .run(&clicks),
            JobBuilder::new(ClickCountJob {
                expected_users: 100,
            })
            .framework(fw)
            .cluster(ClusterSpec::tiny())
            .trace(true)
            .run(&clicks),
            JobBuilder::new(FrequentUsersJob {
                threshold: 5,
                expected_users: 100,
            })
            .framework(fw)
            .cluster(ClusterSpec::tiny())
            .trace(true)
            .run(&clicks),
            JobBuilder::new(PageFreqJob {
                expected_pages: 100,
            })
            .framework(fw)
            .cluster(ClusterSpec::tiny())
            .trace(true)
            .run(&clicks),
            JobBuilder::new(TrigramCountJob {
                threshold: 2,
                expected_trigrams: 5000,
            })
            .framework(fw)
            .cluster(ClusterSpec::tiny())
            .trace(true)
            .run(&docs),
        ];
        for outcome in outcomes {
            let outcome = outcome.expect("job runs");
            let chrome = outcome.trace.as_ref().expect("trace enabled").to_chrome();
            let doc = JsonValue::parse(&chrome).expect("chrome export parses as JSON");
            let events = match doc.get("traceEvents") {
                Some(JsonValue::Arr(items)) => items,
                other => panic!("traceEvents must be an array, got {other:?}"),
            };
            let mut spans = 0usize;
            for ev in events {
                let ph = ev.str_field("ph").expect("every event has ph");
                assert!(ev.u64_field("pid").is_ok(), "every event has pid");
                if ph == "X" {
                    spans += 1;
                    assert!(ev.u64_field("dur").is_ok(), "X events carry dur");
                }
            }
            assert!(spans > 0, "{fw:?}: no complete spans in chrome export");
            cells += 1;
        }
    }
    assert_eq!(cells, 20, "5 workloads x 4 frameworks");
}
