//! Cross-crate integration: the analytical model of §3 must predict the
//! engine's behaviour — byte counts closely, time trends directionally.

use opa::common::units::{KB, MB};
use opa::common::WorkloadSpec;
use opa::core::prelude::*;
use opa::model::io_model::ModelInput;
use opa::model::optimizer::{recommended_chunk, Optimizer};
use opa::model::time_model::CostConstants;
use opa::workloads::clickstream::ClickStreamSpec;
use opa::workloads::SessionizeJob;

fn cluster(chunk_kb: u64, f: usize) -> ClusterSpec {
    let mut spec = ClusterSpec::paper_scaled();
    spec.system.chunk_size = chunk_kb * KB;
    spec.system.merge_factor = f;
    // Small shuffle buffers put the reducers firmly in the multi-pass
    // regime (β ≈ 9) even at test-sized inputs.
    spec.hardware.reduce_buffer = 128 * KB;
    spec
}

fn run_sm(input: &opa::core::job::JobInput, spec: ClusterSpec, users: u64) -> JobOutcome {
    JobBuilder::new(SessionizeJob {
        gap_secs: 300,
        slack_secs: 400,
        state_capacity: 512,
        charge_fixed_footprint: true,
        expected_users: users,
    })
    .framework(Framework::SortMerge)
    .cluster(spec)
    .run(input)
    .expect("job runs")
}

#[test]
fn prop31_bytes_within_ten_percent() {
    let spec = ClickStreamSpec::paper_scaled(24 * MB);
    let (input, stats) = spec.generate_with_stats(33);
    let d = input.total_bytes();
    for (ckb, f) in [(64u64, 10usize), (32, 16)] {
        let c = cluster(ckb, f);
        let outcome = run_sm(&input, c, stats.distinct_users);
        let model = ModelInput::new(c.system, WorkloadSpec::new(d, 1.0, 1.0), c.hardware)
            .expect("valid model");
        let predicted = model.io_bytes().total() * c.hardware.nodes as f64;
        let measured = outcome.metrics.io.total_bytes() as f64;
        let rel = (predicted - measured).abs() / measured;
        assert!(
            rel < 0.10,
            "Prop 3.1 off by {:.1}% at C={ckb}KB F={f} (paper promises <10%)",
            rel * 100.0
        );
    }
}

#[test]
fn model_trend_matches_engine_on_merge_factor() {
    // Fig 4(b)'s key trend: a tiny merge factor costs real time.
    let spec = ClickStreamSpec::paper_scaled(24 * MB);
    let (input, stats) = spec.generate_with_stats(34);
    let slow = run_sm(&input, cluster(64, 2), stats.distinct_users);
    let fast = run_sm(&input, cluster(64, 32), stats.distinct_users);
    assert!(
        slow.metrics.running_time > fast.metrics.running_time,
        "F=2 ({}) should be slower than F=32 ({})",
        slow.metrics.running_time,
        fast.metrics.running_time
    );
    // And the model agrees on the direction.
    let constants = CostConstants::scaled(1024.0);
    let d = input.total_bytes();
    let t = |f: usize| {
        ModelInput::new(
            cluster(64, f).system,
            WorkloadSpec::new(d, 1.0, 1.0),
            cluster(64, f).hardware,
        )
        .unwrap()
        .time_measurement(&constants)
        .total()
    };
    assert!(t(2) > t(32));
}

#[test]
fn optimizer_recommendation_beats_stock_in_engine() {
    let spec = ClickStreamSpec::paper_scaled(24 * MB);
    let (input, stats) = spec.generate_with_stats(35);
    let d = input.total_bytes();
    let hw = ClusterSpec::paper_scaled().hardware;
    let opt = Optimizer::new(
        WorkloadSpec::new(d, 1.0, 1.0),
        hw,
        CostConstants::scaled(1024.0),
    );
    let rec = opt.optimize().expect("optimize");
    // Run the engine at stock and at the recommendation.
    let stock = run_sm(&input, ClusterSpec::paper_scaled(), stats.distinct_users);
    let mut tuned_spec = ClusterSpec::paper_scaled();
    tuned_spec.system.chunk_size = rec.chunk_size;
    // Headroom for skewed reducers, as in the paper's harness.
    tuned_spec.system.merge_factor = rec.merge_factor * 4;
    let tuned = run_sm(&input, tuned_spec, stats.distinct_users);
    assert!(
        tuned.metrics.running_time.as_secs_f64() <= stock.metrics.running_time.as_secs_f64() * 1.02,
        "model-tuned run ({}) should not lose to stock ({})",
        tuned.metrics.running_time,
        stock.metrics.running_time
    );
    // The chunk recommendation itself is the buffer-fit rule.
    assert_eq!(recommended_chunk(1.0, hw.map_buffer), hw.map_buffer);
}
