//! Golden-output pins for the paper's five evaluation workloads.
//!
//! Every (workload, framework) cell runs on a fixed seeded input and its
//! canonically-sorted output is digested with the IFile CRC-32 over the
//! [`encode_run`] serialization. The digests below are *pins*: any engine
//! change that alters even one output byte of one cell fails loudly here,
//! which is exactly what the fault-injection work needs as a tripwire.
//!
//! To re-pin after an *intentional* output change, run with
//! `OPA_PRINT_GOLDEN=1 cargo test -q --test golden_outputs -- --nocapture`
//! and paste the printed table.

use opa::core::prelude::*;
use opa::simio::codec::{crc32, encode_run};
use opa::workloads::clickstream::ClickStreamSpec;
use opa::workloads::documents::DocumentSpec;
use opa::workloads::{
    ClickCountJob, FrequentUsersJob, PageFreqJob, SessionizeJob, TrigramCountJob,
};

const FRAMEWORKS: [Framework; 4] = [
    Framework::SortMerge,
    Framework::MrHash,
    Framework::IncHash,
    Framework::DincHash,
];

fn digest(job: impl Job + Clone + 'static, framework: Framework, input: &JobInput) -> u32 {
    let outcome = JobBuilder::new(job)
        .framework(framework)
        .cluster(ClusterSpec::tiny())
        .run(input)
        .expect("job runs");
    crc32(&encode_run(&outcome.sorted_output()))
}

/// Same cell, but streamed through `opa-stream` in `batches` micro-batches
/// instead of one shot. The stream runtime promises bit-identical output,
/// so this digest must equal the batch pin.
fn stream_digest(
    job: impl Job + Clone + 'static,
    framework: Framework,
    input: &JobInput,
    batches: usize,
) -> u32 {
    let outcome = opa::stream::StreamJobBuilder::new(job)
        .framework(framework)
        .cluster(ClusterSpec::tiny())
        .batches(batches)
        .run_stream(input, |_| {})
        .expect("stream runs");
    crc32(&encode_run(&outcome.job.sorted_output()))
}

fn row(job: impl Job + Clone + 'static, input: &JobInput) -> [u32; 4] {
    let mut out = [0u32; 4];
    for (i, fw) in FRAMEWORKS.into_iter().enumerate() {
        out[i] = digest(job.clone(), fw, input);
    }
    out
}

fn stream_row(job: impl Job + Clone + 'static, input: &JobInput, batches: usize) -> [u32; 4] {
    let mut out = [0u32; 4];
    for (i, fw) in FRAMEWORKS.into_iter().enumerate() {
        out[i] = stream_digest(job.clone(), fw, input, batches);
    }
    out
}

fn sessionize_job() -> SessionizeJob {
    SessionizeJob {
        gap_secs: 300,
        slack_secs: 400,
        state_capacity: 16384,
        charge_fixed_footprint: false,
        expected_users: 100,
    }
}

fn computed() -> Vec<(&'static str, [u32; 4])> {
    let clicks = ClickStreamSpec::small().generate(101);
    let docs = DocumentSpec::small().generate(102);
    vec![
        ("sessionization", row(sessionize_job(), &clicks)),
        (
            "click-count",
            row(
                ClickCountJob {
                    expected_users: 100,
                },
                &clicks,
            ),
        ),
        (
            "frequent-users",
            row(
                FrequentUsersJob {
                    threshold: 20,
                    expected_users: 100,
                },
                &clicks,
            ),
        ),
        (
            "page-freq",
            row(
                PageFreqJob {
                    expected_pages: 1000,
                },
                &clicks,
            ),
        ),
        (
            "trigrams",
            row(
                TrigramCountJob {
                    threshold: 10,
                    expected_trigrams: 10_000,
                },
                &docs,
            ),
        ),
    ]
}

/// (workload, [SortMerge, MrHash, IncHash, DincHash]) digest table,
/// computed once from this revision of the engine and pinned.
const GOLDEN: [(&str, [u32; 4]); 5] = [
    (
        "sessionization",
        [0x398ad04a, 0x398ad04a, 0x398ad04a, 0x98cf5831],
    ),
    (
        "click-count",
        [0xadab7b67, 0xadab7b67, 0xadab7b67, 0xadab7b67],
    ),
    (
        "frequent-users",
        [0xb012ef27, 0xb012ef27, 0x2fbba150, 0x2fbba150],
    ),
    (
        "page-freq",
        [0x13a36f26, 0x13a36f26, 0x13a36f26, 0x13a36f26],
    ),
    ("trigrams", [0xd438209e, 0xd438209e, 0x0fb159c1, 0xd438209e]),
];

#[test]
fn golden_digests_match() {
    let got = computed();
    if std::env::var("OPA_PRINT_GOLDEN").is_ok() {
        for (name, r) in &got {
            println!(
                "    (\"{name}\", [{:#010x}, {:#010x}, {:#010x}, {:#010x}]),",
                r[0], r[1], r[2], r[3]
            );
        }
        return;
    }
    for ((name, want), (_, have)) in GOLDEN.iter().zip(&got) {
        for (i, fw) in FRAMEWORKS.into_iter().enumerate() {
            assert_eq!(
                want[i], have[i],
                "{name} / {fw:?}: output digest drifted (run with \
                 OPA_PRINT_GOLDEN=1 to re-pin after an intentional change)"
            );
        }
    }
}

#[test]
fn streamed_runs_match_golden_digests() {
    // The stream runtime seals micro-batches by *observing* the engine
    // between events, so every (workload, framework) cell streamed in 4
    // arrival-ordered batches must hit the exact same CRC pin as the
    // one-shot batch run.
    let clicks = ClickStreamSpec::small().generate(101);
    let docs = DocumentSpec::small().generate(102);
    let streamed: Vec<(&str, [u32; 4])> = vec![
        ("sessionization", stream_row(sessionize_job(), &clicks, 4)),
        (
            "click-count",
            stream_row(
                ClickCountJob {
                    expected_users: 100,
                },
                &clicks,
                4,
            ),
        ),
        (
            "frequent-users",
            stream_row(
                FrequentUsersJob {
                    threshold: 20,
                    expected_users: 100,
                },
                &clicks,
                4,
            ),
        ),
        (
            "page-freq",
            stream_row(
                PageFreqJob {
                    expected_pages: 1000,
                },
                &clicks,
                4,
            ),
        ),
        (
            "trigrams",
            stream_row(
                TrigramCountJob {
                    threshold: 10,
                    expected_trigrams: 10_000,
                },
                &docs,
                4,
            ),
        ),
    ];
    for ((name, want), (_, have)) in GOLDEN.iter().zip(&streamed) {
        for (i, fw) in FRAMEWORKS.into_iter().enumerate() {
            assert_eq!(
                want[i], have[i],
                "{name} / {fw:?}: streamed output diverges from the \
                 one-shot batch pin"
            );
        }
    }
}

#[test]
fn digests_are_stable_across_repeat_runs() {
    // The pin is only meaningful if a digest is a pure function of the
    // input — spot-check one cell twice.
    let clicks = ClickStreamSpec::small().generate(101);
    let job = ClickCountJob {
        expected_users: 100,
    };
    let a = digest(job.clone(), Framework::DincHash, &clicks);
    let b = digest(job, Framework::DincHash, &clicks);
    assert_eq!(a, b);
}
