//! Regression tests pinning the paper's headline *shapes* at a reduced
//! scale (24 MB ≈ 24 GB paper-scale, scale-invariant by design). If an
//! engine change breaks any of the qualitative results the reproduction
//! stands on, these fail.

use opa::common::units::MB;
use opa::core::prelude::*;
use opa::workloads::clickstream::ClickStreamSpec;
use opa::workloads::SessionizeJob;

struct Shapes {
    sm: JobOutcome,
    mr: JobOutcome,
    inc: JobOutcome,
    dinc: JobOutcome,
}

fn run_all() -> Shapes {
    let spec = ClickStreamSpec::paper_scaled(24 * MB);
    let (input, stats) = spec.generate_with_stats(77);
    let job = |state: usize| SessionizeJob {
        gap_secs: 300,
        slack_secs: 400,
        state_capacity: state,
        charge_fixed_footprint: true,
        expected_users: stats.distinct_users,
    };
    let run = |fw: Framework, state: usize| {
        JobBuilder::new(job(state))
            .framework(fw)
            .cluster(ClusterSpec::paper_scaled())
            .run(&input)
            .expect("job runs")
    };
    Shapes {
        sm: run(Framework::SortMerge, 512),
        mr: run(Framework::MrHash, 512),
        inc: run(Framework::IncHash, 512),
        dinc: run(Framework::DincHash, 512),
    }
}

#[test]
fn headline_shapes_hold() {
    let s = run_all();

    // Table 3 ordering: SM slowest, MR-hash in between, INC fastest.
    let t = |o: &JobOutcome| o.metrics.running_time.as_secs_f64();
    assert!(
        t(&s.sm) > t(&s.mr),
        "SM ({}) must outlast MR ({})",
        t(&s.sm),
        t(&s.mr)
    );
    assert!(
        t(&s.mr) > t(&s.inc),
        "MR ({}) must outlast INC ({})",
        t(&s.mr),
        t(&s.inc)
    );

    // Map CPU: eliminating the sort cuts map-side CPU substantially.
    let mc = |o: &JobOutcome| o.metrics.map_cpu_per_node.as_secs_f64();
    assert!(
        mc(&s.mr) < mc(&s.sm) * 0.75,
        "hash map CPU ({}) should be well under sort-merge's ({})",
        mc(&s.mr),
        mc(&s.sm)
    );

    // Definition-1 progress: SM and MR block at ~33%; INC/DINC keep up.
    let at_finish = |o: &JobOutcome| o.progress.reduce_pct_at_map_finish();
    assert!(
        (at_finish(&s.sm) - 33.3).abs() < 3.0,
        "SM at {}",
        at_finish(&s.sm)
    );
    assert!(
        (at_finish(&s.mr) - 33.3).abs() < 3.0,
        "MR at {}",
        at_finish(&s.mr)
    );
    assert!(at_finish(&s.inc) > 60.0, "INC at {}", at_finish(&s.inc));
    assert!(at_finish(&s.dinc) > 85.0, "DINC at {}", at_finish(&s.dinc));

    // Spill: INC cuts SM's spill hard; DINC nearly eliminates it.
    let spill = |o: &JobOutcome| o.metrics.reduce_spill_bytes;
    assert!(spill(&s.inc) * 2 < spill(&s.sm), "INC spill not reduced");
    assert!(
        spill(&s.dinc) * 20 < spill(&s.sm),
        "DINC spill {} not ≫ below SM {}",
        spill(&s.dinc),
        spill(&s.sm)
    );

    // Every framework produces the same number of output clicks.
    assert_eq!(s.sm.metrics.output_records, s.mr.metrics.output_records);
    assert_eq!(s.sm.metrics.output_records, s.inc.metrics.output_records);
    assert_eq!(s.sm.metrics.output_records, s.dinc.metrics.output_records);
}

#[test]
fn state_size_tradeoff_holds() {
    // Table 4 / Fig 7(d): bigger fixed states ⇒ fewer resident keys ⇒
    // more spill and later divergence from map progress.
    let spec = ClickStreamSpec::paper_scaled(24 * MB);
    let (input, stats) = spec.generate_with_stats(78);
    let run = |state: usize| {
        JobBuilder::new(SessionizeJob {
            gap_secs: 300,
            slack_secs: 400,
            state_capacity: state,
            charge_fixed_footprint: true,
            expected_users: stats.distinct_users,
        })
        .framework(Framework::IncHash)
        .cluster(ClusterSpec::paper_scaled())
        .run(&input)
        .expect("job runs")
    };
    let small = run(512);
    let large = run(2048);
    assert!(
        large.metrics.reduce_spill_bytes > small.metrics.reduce_spill_bytes,
        "2 KB states must spill more than 0.5 KB states ({} vs {})",
        large.metrics.reduce_spill_bytes,
        small.metrics.reduce_spill_bytes
    );
    assert!(
        large.progress.reduce_pct_at_map_finish() < small.progress.reduce_pct_at_map_finish(),
        "larger states must diverge earlier from map progress"
    );
}
