//! Property-based end-to-end test: for *arbitrary* generated inputs, every
//! framework implements MapReduce group-by exactly — the computation-model
//! contract of the paper's §2.1.

use opa::core::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A generic word-count-style job over arbitrary byte records: map emits
/// (first byte of record, 1); reduce sums — exercising skew, empty
/// partitions, and single-key floods depending on the generated input.
#[derive(Clone)]
struct ByteCount;

impl Job for ByteCount {
    fn name(&self) -> &str {
        "byte count"
    }
    fn map(&self, record: &[u8], emit: &mut dyn FnMut(&[u8], &[u8])) {
        if !record.is_empty() {
            emit(&record[..1], &1u64.to_be_bytes());
        }
    }
    fn reduce(&self, key: &Key, values: Vec<Value>, ctx: &mut ReduceCtx) {
        let sum: u64 = values.iter().filter_map(Value::as_u64).sum();
        ctx.emit(key.clone(), Value::from_u64(sum));
    }
    fn combiner(&self) -> Option<&dyn Combiner> {
        Some(self)
    }
    fn incremental(&self) -> Option<&dyn IncrementalReducer> {
        Some(self)
    }
    fn expected_keys(&self) -> Option<u64> {
        Some(256)
    }
    fn state_size_hint(&self) -> Option<u64> {
        Some(8)
    }
}

impl Combiner for ByteCount {
    fn combine(&self, _key: &Key, values: Vec<Value>) -> Vec<Value> {
        vec![Value::from_u64(
            values.iter().filter_map(Value::as_u64).sum(),
        )]
    }
}

impl IncrementalReducer for ByteCount {
    fn init(&self, _key: &Key, value: Value) -> Value {
        value
    }
    fn cb(&self, _key: &Key, acc: &mut Value, other: Value, _ctx: &mut ReduceCtx) {
        *acc = Value::from_u64(acc.as_u64().unwrap_or(0) + other.as_u64().unwrap_or(0));
    }
    fn finalize(&self, key: &Key, state: Value, ctx: &mut ReduceCtx) {
        ctx.emit(key.clone(), state);
    }
}

fn oracle(records: &[Vec<u8>]) -> BTreeMap<u8, u64> {
    let mut m = BTreeMap::new();
    for r in records {
        if let Some(&b) = r.first() {
            *m.entry(b).or_default() += 1;
        }
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All five frameworks compute the exact group-by for arbitrary
    /// records, including records that fail to parse (empty), heavy key
    /// skew (single-byte alphabet), and inputs smaller than one chunk.
    #[test]
    fn group_by_exact_for_arbitrary_inputs(
        records in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..40),
            1..400,
        ),
        alphabet in 1u8..16,
    ) {
        // Optionally squash the key space to force heavy collisions.
        let records: Vec<Vec<u8>> = records
            .into_iter()
            .map(|mut r| {
                r[0] %= alphabet;
                r
            })
            .collect();
        let expect = oracle(&records);
        let input = JobInput::from_records(records);
        for fw in [
            Framework::SortMerge,
            Framework::SortMergePipelined,
            Framework::MrHash,
            Framework::IncHash,
            Framework::DincHash,
        ] {
            let outcome = JobBuilder::new(ByteCount)
                .framework(fw)
                .cluster(ClusterSpec::tiny())
                .run(&input)
                .expect("job runs");
            let got: BTreeMap<u8, u64> = outcome
                .output
                .iter()
                .map(|p| (p.key.bytes()[0], p.value.as_u64().unwrap()))
                .collect();
            prop_assert_eq!(&got, &expect, "framework {:?} diverged", fw);
        }
    }

    /// Spill accounting is conserved: what the metrics report as reduce
    /// spill is non-negative and zero whenever memory suffices.
    #[test]
    fn spill_accounting_sane(
        records in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..20),
            1..100,
        ),
    ) {
        let input = JobInput::from_records(records);
        let outcome = JobBuilder::new(ByteCount)
            .framework(Framework::IncHash)
            .cluster(ClusterSpec::tiny())
            .run(&input)
            .expect("job runs");
        // 256 possible keys × ~24 B/state fits any reduce buffer here.
        prop_assert_eq!(outcome.metrics.reduce_spill_bytes, 0);
        prop_assert_eq!(
            outcome.metrics.input_bytes,
            input.total_bytes()
        );
    }
}
